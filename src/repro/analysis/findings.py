"""Finding records emitted by the distributed-correctness linter.

A finding is machine-readable (rule id, path, line, column, severity,
message) so CI and editors can consume ``--format json`` output; the
text format is the usual ``path:line:col: RULE [severity] message``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import PurePath
from typing import Any, Dict, Mapping, Sequence, Tuple, Union

#: Severity levels.  Both fail the lint run (the repo must be clean);
#: the distinction tells a reader whether the rule is exact (``error``)
#: or a heuristic worth a look (``warning``).
ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    severity: str
    message: str

    def format(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule} [{self.severity}] {self.message}")

    def to_dict(self) -> Dict[str, Union[str, int]]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)


#: SARIF 2.1.0 constants (the schema GitHub code scanning ingests).
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")
SARIF_VERSION = "2.1.0"


def to_sarif(findings: Sequence[Finding],
             rules: "Mapping[str, Mapping[str, str]] | None" = None,
             tool_name: str = "repro.analysis") -> Dict[str, Any]:
    """Findings as a SARIF 2.1.0 log (one run), for GitHub code scanning.

    ``rules`` maps rule id -> ``{"severity": ..., "summary": ...}`` and
    populates ``tool.driver.rules``; the CLI passes the live registry so
    this module stays import-cycle-free.  Rules that appear only in
    ``findings`` are still emitted (with empty metadata) so every
    result's ``ruleId`` resolves.
    """
    rules = dict(rules or {})
    rule_ids = sorted(set(rules) | {f.rule for f in findings})
    driver_rules = []
    for rule_id in rule_ids:
        meta = dict(rules.get(rule_id, {}))
        entry: Dict[str, Any] = {"id": rule_id}
        if meta.get("summary"):
            entry["shortDescription"] = {"text": meta["summary"]}
        entry["defaultConfiguration"] = {
            "level": _sarif_level(meta.get("severity", ERROR)),
        }
        driver_rules.append(entry)
    index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    results = [_sarif_result(f, index) for f in findings]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": tool_name,
                "rules": driver_rules,
            }},
            "results": results,
        }],
    }


def _sarif_level(severity: str) -> str:
    return {ERROR: "error", WARNING: "warning"}.get(severity, "note")


def _sarif_result(finding: Finding,
                  rule_index: Mapping[str, int]) -> Dict[str, Any]:
    return {
        "ruleId": finding.rule,
        "ruleIndex": rule_index[finding.rule],
        "level": _sarif_level(finding.severity),
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    # SARIF URIs are always forward-slashed, even for
                    # findings produced on Windows paths.
                    "uri": PurePath(
                        finding.path.replace("\\", "/")).as_posix(),
                    "uriBaseId": "SRCROOT",
                },
                "region": {
                    "startLine": finding.line,
                    # SARIF columns are 1-based; ast columns are 0-based.
                    "startColumn": finding.col + 1,
                },
            },
        }],
    }
