"""Thread-safety rules (REP4xx) — the static half of the concurrency pass.

The parallel backend's correctness argument is a short list of
conventions (DESIGN.md §14): rank sections mutate only rank-owned state;
shared aggregates are folded from per-rank cells by *absolute
assignment* at barriers, on the driver; mailbox deques are the only
cross-rank channel; metrics are *published* at barriers, never from
handler code.  These rules machine-check the code shapes that violate
those conventions, using the engine's light intra-function dataflow
(:func:`~repro.analysis.engine.shared_name_resolver`,
:func:`~repro.analysis.engine.lock_guarded`).

"Concurrent scope" means a function that can run off the driver thread
*in the driver's address space*: a registered handler/visitor/batch
handler (delivered inside a barrier, concurrently with other ranks'
sections under the parallel executor) or a function handed to an
executor (``submit``/``map_ranks``/``run_ranks``/``run_on_all``/
``Thread(target=...)`` — collected by the engine into
``ProjectContext.executor_tasks``).

Worker *process* entry points (``Process(target=...)``, collected into
``ProjectContext.process_tasks``) are **not** concurrent scope: the
target runs in its own address space (forked copy or spawn re-import),
so module/class state it mutates is private to that worker, closures
resolve against the worker's copy of the cell, and metrics registries
it touches are worker-local shadows — none of the thread-interleaving
hazards REP401/402/403/405 model exist across a process boundary.  A
function handed to *both* ``Thread`` and ``Process`` is still checked
(its thread registration keeps it in scope).

- **REP401** — read-modify-write (augmented assignment, mutating method
  call, ``del``) on module/class-level shared state from concurrent
  scope with no lock held.  Plain assignment is exempt: it is the
  sanctioned absolute-assignment fold, idempotent and last-writer-safe.
- **REP402** — non-atomic check-then-act: a membership test on a shared
  mapping guarding a mutation of the same mapping (``if k in d:
  d[k]...``).  Between the check and the act another thread can change
  the answer; use ``setdefault``/``get``/``pop(k, default)`` or a lock.
- **REP403** — a handler or task *closure* capturing a driver-mutable
  local (reassigned, augmented, or a loop variable in the enclosing
  scope).  The closure reads the variable's cell when it *runs*, not
  when it was created — under a concurrent executor that read races the
  driver's next write.  Bind the value as an argument instead.
- **REP404** — lock acquisition order inconsistent with the declared
  ``lock-order`` hierarchy in ``[tool.repro.analysis]`` (or
  re-acquiring a held non-reentrant lock).
- **REP405** — metrics publication (``set_counter``/``set_gauge``/
  ``inc``/``observe``) from concurrent scope.  Publication is a
  driver-at-barrier responsibility; handlers fold into rank-owned cells
  and let ``publish_metrics`` mirror the totals.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .config import AnalysisConfig
from .engine import (
    base_of,
    bound_names,
    is_lockish,
    own_scope_walk,
    local_bindings,
    lock_guarded,
    shared_name_resolver,
)
from .findings import ERROR, Finding
from .registry import (
    FunctionInfo,
    ProjectContext,
    SourceModule,
    call_method_name,
    dotted_name,
    rule,
)

#: Method names that mutate their receiver in place.
_MUTATORS = frozenset({
    "append", "appendleft", "extend", "extendleft", "insert",
    "add", "update", "setdefault", "remove", "discard",
    "pop", "popleft", "popitem", "clear", "sort", "reverse",
})

#: Metrics writer methods (REP405).  ``span`` is excluded: opening a
#: span from a worker thread is how threaded query engines time
#: themselves and the registry records it race-free.
_METRIC_WRITERS = frozenset({"set_counter", "set_gauge", "inc", "observe"})


def _finding(module: SourceModule, node: ast.AST, rule_id: str,
             message: str, severity: str = ERROR) -> Finding:
    return Finding(path=module.path, line=getattr(node, "lineno", 1),
                   col=getattr(node, "col_offset", 0) + 1, rule=rule_id,
                   severity=severity, message=message)


def _concurrent_functions(
        project: ProjectContext) -> Iterator[Tuple[FunctionInfo, str]]:
    """Every function that can run off the driver thread in the
    driver's address space, deduplicated (one function may be
    registered under several names), tagged ``"handler"`` or
    ``"task"``.

    ``project.process_tasks`` is deliberately absent: a ``Process``
    target's writes land in the worker's own (forked or re-imported)
    copy of every module/class binding, so there is no thread to
    interleave with — applying the REP4xx shapes there would flag
    perfectly safe worker bookkeeping.  Functions that are *also*
    registered as handlers or thread tasks still flow through the
    sources below.
    """
    seen: Set[int] = set()
    sources = (
        ("handler", project.handlers),
        ("handler", project.batch_handlers),
        ("handler", project.visitors),
        ("task", project.executor_tasks),
    )
    for kind, registry in sources:
        for infos in registry.values():
            for info in infos:
                fn = info.func
                if fn is None or fn.node is None or fn.module is None:
                    continue
                if id(fn.node) in seen:
                    continue
                seen.add(id(fn.node))
                yield fn, kind


def _describe(expr: ast.expr) -> str:
    name = dotted_name(expr)
    if name is not None:
        return name
    base = base_of(expr)
    if isinstance(base, ast.Name):
        return base.id
    return "<expr>"


@rule("REP401", ERROR,
      "shared-state mutation from handler/task scope without a lock")
def shared_mutation(project: ProjectContext,
                    config: AnalysisConfig) -> Iterator[Finding]:
    for fn, kind in _concurrent_functions(project):
        module, body = fn.module, fn.node
        shared = shared_name_resolver(body, module)
        guarded = lock_guarded(body, config)
        for node in ast.walk(body):
            if id(node) in guarded:
                continue
            if isinstance(node, ast.AugAssign) and shared(node.target):
                yield _finding(
                    module, node, "REP401",
                    f"read-modify-write of shared state "
                    f"'{_describe(node.target)}' from {kind} scope: another "
                    f"thread can interleave between the read and the write; "
                    f"fold into a rank-owned cell and publish by absolute "
                    f"assignment at a barrier, or hold a lock")
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, (ast.Subscript, ast.Attribute)) \
                            and shared(target):
                        yield _finding(
                            module, node, "REP401",
                            f"del on shared state '{_describe(target)}' "
                            f"from {kind} scope without a lock")
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _MUTATORS \
                    and shared(node.func.value):
                yield _finding(
                    module, node, "REP401",
                    f"mutating call '.{node.func.attr}()' on shared state "
                    f"'{_describe(node.func.value)}' from {kind} scope "
                    f"without a lock; move the mutation driver-side or "
                    f"fold per-rank and publish at a barrier")


def _mutates_container(stmts: List[ast.stmt], container: ast.expr) -> \
        Optional[ast.AST]:
    """First statement-level mutation of ``container`` (matched by AST
    dump) inside ``stmts``: subscript store/del/augassign, or a mutating
    method call on the container or one of its subscripts."""
    want = ast.dump(container)

    def matches(expr: ast.expr) -> bool:
        if ast.dump(expr) == want:
            return True
        return (isinstance(expr, ast.Subscript)
                and ast.dump(expr.value) == want)

    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Assign):
                if any(isinstance(t, ast.Subscript) and matches(t)
                       for t in node.targets):
                    return node
            elif isinstance(node, ast.AugAssign):
                if isinstance(node.target, ast.Subscript) \
                        and matches(node.target):
                    return node
            elif isinstance(node, ast.Delete):
                if any(isinstance(t, ast.Subscript) and matches(t)
                       for t in node.targets):
                    return node
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _MUTATORS \
                    and matches(node.func.value):
                return node
    return None


@rule("REP402", ERROR,
      "non-atomic check-then-act on a shared mapping")
def check_then_act(project: ProjectContext,
                   config: AnalysisConfig) -> Iterator[Finding]:
    for fn, kind in _concurrent_functions(project):
        module, body = fn.module, fn.node
        shared = shared_name_resolver(body, module)
        guarded = lock_guarded(body, config)
        for node in ast.walk(body):
            if not isinstance(node, ast.If) or id(node) in guarded:
                continue
            test = node.test
            if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
                test = test.operand
            if not (isinstance(test, ast.Compare) and len(test.ops) == 1
                    and isinstance(test.ops[0], (ast.In, ast.NotIn))):
                continue
            container = test.comparators[0]
            if not shared(container):
                continue
            mutation = _mutates_container(node.body + node.orelse, container)
            if mutation is not None:
                yield _finding(
                    module, node, "REP402",
                    f"check-then-act on shared mapping "
                    f"'{_describe(container)}' from {kind} scope: the "
                    f"membership test and the mutation at line "
                    f"{getattr(mutation, 'lineno', node.lineno)} are not "
                    f"atomic; use setdefault()/get()/pop(k, default) or "
                    f"hold one lock across both")


def _driver_mutations(outer: ast.AST, inner: ast.AST,
                      names: Set[str]) -> Dict[str, str]:
    """Which captured ``names`` the enclosing function mutates in its
    *own* scope (sibling closures bind their own locals): maps name ->
    reason ("reassigned", "augmented", "loop variable").

    An initialize-then-overwrite entirely *before* the closure's def is
    not driver-mutable — the cell is stable by the time the closure can
    run.  What races is a write the driver can issue after the closure
    exists: a reassignment below the def, an augmented assignment, or a
    loop variable (the loop body is where the closure escapes).
    """
    assigns: Dict[str, List[int]] = {}
    reasons: Dict[str, str] = {}

    for node in own_scope_walk(outer):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                for bound in bound_names(target):
                    if bound in names:
                        assigns.setdefault(bound, []).append(node.lineno)
        elif isinstance(node, ast.NamedExpr) \
                and isinstance(node.target, ast.Name) \
                and node.target.id in names:
            assigns.setdefault(node.target.id, []).append(node.lineno)
        elif isinstance(node, ast.AugAssign) \
                and isinstance(node.target, ast.Name) \
                and node.target.id in names:
            reasons.setdefault(node.target.id, "augmented")
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for bound in bound_names(node.target):
                if bound in names:
                    reasons.setdefault(bound, "loop variable")
    closure_line = getattr(inner, "lineno", 0)
    for name, lines in assigns.items():
        if any(line > closure_line for line in lines):
            reasons.setdefault(name, "reassigned")
    return reasons


@rule("REP403", ERROR,
      "handler/task closure captures a driver-mutable local")
def closure_capture(project: ProjectContext,
                    config: AnalysisConfig) -> Iterator[Finding]:
    # Registered closures with free variables, keyed by def node id.
    captured: Dict[int, Tuple[FunctionInfo, str]] = {}
    for fn, kind in _concurrent_functions(project):
        if fn.free_vars:
            captured[id(fn.node)] = (fn, kind)
    if not captured:
        return
    for module in project.modules:
        for outer in ast.walk(module.tree):
            if not isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            # Locals of the enclosing function (params + bindings):
            # only captures *of this scope* can be assessed here.
            outer_locals = local_bindings(outer)
            for inner in ast.walk(outer):
                if inner is outer or id(inner) not in captured:
                    continue
                fn, kind = captured[id(inner)]
                relevant = {v for v in fn.free_vars if v in outer_locals}
                if not relevant:
                    continue
                mutable = _driver_mutations(outer, inner, relevant)
                for name in sorted(mutable):
                    yield _finding(
                        module, inner, "REP403",
                        f"{kind} closure '{fn.name}' captures "
                        f"driver-mutable local '{name}' "
                        f"({mutable[name]} in the enclosing scope): the "
                        f"closure reads the cell when it runs, racing the "
                        f"driver's next write; pass the value as an "
                        f"argument or a default instead")


def _walk_lock_nesting(stmts: List[ast.stmt], stack: List[Tuple[str, str]],
                      module: SourceModule,
                      config: AnalysisConfig) -> Iterator[Finding]:
    order = {name: i for i, name in enumerate(config.lock_order)}
    for stmt in stmts:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            acquired: List[Tuple[str, str]] = []
            for item in stmt.items:
                name = is_lockish(item.context_expr, config)
                if name is None:
                    continue
                full = dotted_name(item.context_expr) or name
                for held_name, held_full in (*stack, *acquired):
                    if held_full == full:
                        yield _finding(
                            module, stmt, "REP404",
                            f"lock '{full}' re-acquired while already "
                            f"held: threading.Lock is not reentrant, "
                            f"this deadlocks")
                    elif (name in order and held_name in order
                          and order[held_name] > order[name]):
                        yield _finding(
                            module, stmt, "REP404",
                            f"lock '{name}' acquired while holding "
                            f"'{held_name}': the declared lock-order "
                            f"hierarchy is "
                            f"{' -> '.join(config.lock_order)} "
                            f"(outermost first); inverting it can "
                            f"deadlock against a thread acquiring in "
                            f"order")
                acquired.append((name, full))
            yield from _walk_lock_nesting(stmt.body, stack + acquired,
                                          module, config)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            # A nested def's body runs later, not under the current
            # stack; the top-level walk visits it independently.
            continue
        else:
            for field_name in ("body", "orelse", "finalbody", "handlers"):
                children = getattr(stmt, field_name, None)
                if not children:
                    continue
                if field_name == "handlers":
                    for child in children:
                        if isinstance(child, ast.ExceptHandler):
                            yield from _walk_lock_nesting(child.body, stack,
                                                          module, config)
                else:
                    yield from _walk_lock_nesting(children, stack,
                                                  module, config)


@rule("REP404", ERROR,
      "lock acquisition order inconsistent with the declared hierarchy")
def lock_order(project: ProjectContext,
               config: AnalysisConfig) -> Iterator[Finding]:
    for module in project.modules:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from _walk_lock_nesting(node.body, [], module, config)


@rule("REP405", ERROR,
      "metrics publication outside a barrier context")
def metrics_publication(project: ProjectContext,
                        config: AnalysisConfig) -> Iterator[Finding]:
    for fn, kind in _concurrent_functions(project):
        module, body = fn.module, fn.node
        for node in ast.walk(body):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _METRIC_WRITERS):
                continue
            receiver = _describe(node.func.value)
            if "metric" not in receiver and "registry" not in receiver:
                # `.pop`-style name collisions: only flag receivers that
                # look like a metrics registry (`self.metrics`,
                # `ctx.world.metrics`, a `registry` local, ...).
                continue
            yield _finding(
                module, node, "REP405",
                f"metrics publication '{receiver}.{node.func.attr}()' from "
                f"{kind} scope: publication is a driver-at-barrier "
                f"responsibility (epoch discipline, not mutual exclusion); "
                f"fold into rank-owned state and let publish_metrics "
                f"mirror the totals at the next barrier")
