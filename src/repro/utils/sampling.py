"""Sampling primitives used by the NN-Descent ``Sample`` function.

Algorithm 1 calls ``Sample(S, n)`` in two places: drawing the random
initial neighbors, and sub-sampling the reversed old/new lists down to
``rho * K`` entries.  Both uses need sampling *without replacement* capped
at ``len(S)``.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, TypeVar

import numpy as np

T = TypeVar("T")


def sample_without_replacement(
    rng: np.random.Generator, population: int, n: int
) -> np.ndarray:
    """Sample ``min(n, population)`` distinct ints from ``[0, population)``.

    Chooses the algorithm by sampling fraction: permutation-based for
    dense draws, rejection for sparse ones (cheap at NN-Descent's typical
    ``rho*K`` out of thousands).
    """
    if population <= 0 or n <= 0:
        return np.empty(0, dtype=np.int64)
    n = min(int(n), int(population))
    if n * 4 >= population:
        return rng.permutation(population)[:n].astype(np.int64)
    # Sparse draw: rejection sampling with a growing batch.
    chosen: set[int] = set()
    while len(chosen) < n:
        need = n - len(chosen)
        draws = rng.integers(0, population, size=max(need * 2, 8))
        for d in draws:
            chosen.add(int(d))
            if len(chosen) == n:
                break
    return np.fromiter(chosen, dtype=np.int64, count=n)


def sample_items(rng: np.random.Generator, items: Sequence[T], n: int) -> List[T]:
    """``Sample(S, n)`` of Algorithm 1 over an arbitrary sequence."""
    idx = sample_without_replacement(rng, len(items), n)
    return [items[int(i)] for i in idx]


def reservoir_sample(rng: np.random.Generator, stream: Iterable[T], n: int) -> List[T]:
    """Uniform reservoir sample of size ``n`` from a one-pass stream.

    Used when sub-sampling reversed-neighbor lists whose length is not
    known in advance (they arrive as asynchronous messages).
    """
    reservoir: List[T] = []
    for i, item in enumerate(stream):
        if i < n:
            reservoir.append(item)
        else:
            j = int(rng.integers(0, i + 1))
            if j < n:
                reservoir[j] = item
    return reservoir
