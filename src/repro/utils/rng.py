"""Deterministic random-number-stream management.

Distributed NN-Descent needs *independent but reproducible* randomness on
every simulated rank (initial neighbor sampling, rho-sampling, destination
shuffles).  We derive per-rank, per-purpose streams from a root seed using
``numpy.random.SeedSequence.spawn``, which guarantees stream independence
without coordination — the same discipline real MPI codes use so that
rank counts do not silently change results.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np


def derive_rng(seed: int, *keys: int) -> np.random.Generator:
    """Create a generator from ``seed`` refined by integer ``keys``.

    ``derive_rng(seed, rank)`` and ``derive_rng(seed, rank, phase)`` give
    independent streams; calling with the same arguments always returns a
    generator producing the same sequence.
    """
    ss = np.random.SeedSequence([int(seed), *[int(k) for k in keys]])
    return np.random.default_rng(ss)


def spawn_rngs(seed: int, n: int) -> List[np.random.Generator]:
    """``n`` independent generators derived from one root seed."""
    root = np.random.SeedSequence(int(seed))
    return [np.random.default_rng(child) for child in root.spawn(int(n))]


class SeedSequenceFactory:
    """Hands out independent child seeds from one root, with a counter.

    Useful when the number of consumers is not known up front (e.g. one
    stream per NN-Descent iteration per rank).
    """

    def __init__(self, seed: int) -> None:
        self._root = np.random.SeedSequence(int(seed))
        self._count = 0

    def next_rng(self) -> np.random.Generator:
        """Return the next independent generator."""
        child = self._root.spawn(self._count + 1)[self._count]
        self._count += 1
        return np.random.default_rng(child)

    def rng_for(self, *keys: int) -> np.random.Generator:
        """Keyed (stateless) derivation; does not advance the counter."""
        ss = np.random.SeedSequence(
            list(self._root.entropy if isinstance(self._root.entropy, Iterable) else [self._root.entropy])
            + [int(k) for k in keys]
        )
        return np.random.default_rng(ss)

    @property
    def issued(self) -> int:
        return self._count


def permutation_of(items: Sequence, seed: int, *keys: int) -> list:
    """Deterministic permutation of ``items`` under a keyed stream.

    Used by Section 4.2's destination shuffle: the shuffle must differ
    between ranks (keys include the rank id) but be reproducible.
    """
    rng = derive_rng(seed, *keys)
    idx = rng.permutation(len(items))
    return [items[i] for i in idx]
