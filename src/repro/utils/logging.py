"""Per-rank logging for the simulated runtime.

Real DNND prints progress from rank 0; the simulated cluster mimics that:
each rank gets a child logger named ``repro.rank{r}`` and, by default,
only rank 0 emits at INFO while the others stay at WARNING, so a 128-rank
simulation does not flood the console.
"""

from __future__ import annotations

import logging

_ROOT_NAME = "repro"


def get_logger(name: str = _ROOT_NAME) -> logging.Logger:
    return logging.getLogger(name)


def rank_logger(rank: int, verbose_all_ranks: bool = False) -> logging.Logger:
    """Logger for a simulated rank, quiet unless rank 0 or verbose mode."""
    logger = logging.getLogger(f"{_ROOT_NAME}.rank{rank}")
    if rank != 0 and not verbose_all_ranks:
        logger.setLevel(logging.WARNING)
    return logger


def configure(level: int = logging.INFO) -> None:
    """One-shot basic configuration used by examples and benchmarks."""
    root = logging.getLogger(_ROOT_NAME)
    if not root.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s", "%H:%M:%S")
        )
        root.addHandler(handler)
    root.setLevel(level)
