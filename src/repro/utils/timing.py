"""Wall-clock timing helpers for the benchmark harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator


def format_duration(seconds: float) -> str:
    """Human-readable duration: ``'1.84 h'``, ``'3.2 min'``, ``'45 ms'``."""
    if seconds >= 3600:
        return f"{seconds / 3600:.2f} h"
    if seconds >= 60:
        return f"{seconds / 60:.1f} min"
    if seconds >= 1:
        return f"{seconds:.2f} s"
    return f"{seconds * 1e3:.0f} ms"


@dataclass
class Timer:
    """Accumulating named timer.

    >>> t = Timer()
    >>> with t.measure("phase"):
    ...     pass
    >>> t.total("phase") >= 0
    True
    """

    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.totals[name] = self.totals.get(name, 0.0) + elapsed
            self.counts[name] = self.counts.get(name, 0) + 1

    def total(self, name: str) -> float:
        return self.totals.get(name, 0.0)

    def report(self) -> str:
        lines = []
        for name in sorted(self.totals, key=self.totals.get, reverse=True):
            lines.append(
                f"{name:<30s} {format_duration(self.totals[name]):>10s}"
                f"  x{self.counts[name]}"
            )
        return "\n".join(lines)


class Stopwatch:
    """Single start/stop stopwatch with lap support."""

    def __init__(self, autostart: bool = True) -> None:
        self._start: float | None = time.perf_counter() if autostart else None
        self._elapsed = 0.0

    def start(self) -> "Stopwatch":
        if self._start is None:
            self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is not None:
            self._elapsed += time.perf_counter() - self._start
            self._start = None
        return self._elapsed

    def lap(self) -> float:
        """Elapsed time so far without stopping."""
        running = time.perf_counter() - self._start if self._start is not None else 0.0
        return self._elapsed + running

    @property
    def elapsed(self) -> float:
        return self.lap()
