"""Small shared utilities: seeded RNG streams, timing, sampling, arrays."""

from .rng import SeedSequenceFactory, derive_rng, permutation_of, spawn_rngs
from .timing import Stopwatch, Timer, format_duration
from .sampling import reservoir_sample, sample_items, sample_without_replacement
from .arrays import as_float32_matrix, chunk_ranges, ensure_2d, pad_columns

__all__ = [
    "SeedSequenceFactory",
    "derive_rng",
    "permutation_of",
    "spawn_rngs",
    "Stopwatch",
    "Timer",
    "format_duration",
    "reservoir_sample",
    "sample_items",
    "sample_without_replacement",
    "as_float32_matrix",
    "chunk_ranges",
    "ensure_2d",
    "pad_columns",
]
