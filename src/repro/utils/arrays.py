"""Array shape/dtype helpers shared across the library."""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from ..errors import DatasetError


def ensure_2d(x: np.ndarray, name: str = "array") -> np.ndarray:
    """Return ``x`` as a 2-D array; promote a single vector to one row."""
    arr = np.asarray(x)
    if arr.ndim == 1:
        return arr.reshape(1, -1)
    if arr.ndim != 2:
        raise DatasetError(f"{name} must be 1-D or 2-D, got ndim={arr.ndim}")
    return arr


def as_float32_matrix(x: np.ndarray, name: str = "data") -> np.ndarray:
    """Validate a dense feature matrix and view/convert it as float32.

    Integer inputs (e.g. BigANN's uint8 vectors) are converted; float64 is
    downcast — matching the paper's use of float32 on the wire.
    """
    arr = ensure_2d(x, name)
    if arr.size == 0:
        raise DatasetError(f"{name} is empty")
    if not np.issubdtype(arr.dtype, np.number):
        raise DatasetError(f"{name} must be numeric, got dtype={arr.dtype}")
    if arr.dtype == np.float32:
        return np.ascontiguousarray(arr)
    return np.ascontiguousarray(arr, dtype=np.float32)


def pad_columns(x: np.ndarray, multiple: int) -> np.ndarray:
    """Zero-pad a matrix's columns up to the next multiple of ``multiple``.

    Product quantization needs ``dim % m == 0``; zero padding preserves
    L2 distances exactly, so it is the standard fix for awkward
    dimensions.  Returns the input unchanged when already aligned.
    """
    if multiple <= 0:
        raise ValueError(f"multiple must be positive, got {multiple}")
    arr = ensure_2d(x, "data")
    remainder = arr.shape[1] % multiple
    if remainder == 0:
        return arr
    pad = multiple - remainder
    return np.pad(arr, ((0, 0), (0, pad)), mode="constant")


def chunk_ranges(n: int, chunk: int) -> Iterator[Tuple[int, int]]:
    """Yield ``(start, stop)`` covering ``[0, n)`` in blocks of ``chunk``.

    The brute-force baseline and ground-truth computation use blocked
    pairwise distances to bound peak memory (a cache-friendly access
    pattern per the numpy optimization guide).
    """
    if chunk <= 0:
        raise ValueError(f"chunk must be positive, got {chunk}")
    start = 0
    while start < n:
        stop = min(start + chunk, n)
        yield start, stop
        start = stop
