"""repro — DNND: Distributed NN-Descent for massive-scale k-NN graphs.

A full reproduction of *Iwabuchi, Steil, Priest, Pearce, Sanders:
"Towards A Massive-Scale Distributed Neighborhood Graph Construction"*
(SC-W 2023), including the distributed runtime substrate (simulated
MPI/YGM/Metall), the NN-Descent and DNND algorithms, the HNSW and
brute-force baselines, the ANN search, and the full evaluation harness.

Quickstart::

    import numpy as np
    from repro import build_knn_graph, KNNGraphSearcher, optimize_graph

    data = np.random.default_rng(0).random((2000, 32), dtype=np.float32)
    result = build_knn_graph(data, k=10, metric="sqeuclidean")
    adjacency = optimize_graph(result.graph, pruning_factor=1.5)
    searcher = KNNGraphSearcher(adjacency, data, metric="sqeuclidean")
    hits = searcher.query(data[0], l=10, epsilon=0.1)

Distributed (simulated cluster)::

    from repro import DNND, DNNDConfig, ClusterConfig

    dnnd = DNND(data, DNNDConfig().with_(k=10),
                cluster=ClusterConfig(nodes=4, procs_per_node=4))
    result = dnnd.build()
    adjacency = dnnd.optimize()
    print(result.message_stats.format_table())
"""

from ._version import __version__, PAPER
from .config import (
    ClusterConfig,
    CommOptConfig,
    DNNDConfig,
    NNDescentConfig,
)
from .errors import (
    ConfigError,
    DatasetError,
    FaultToleranceError,
    GraphError,
    MetricError,
    PartitionError,
    RankFailureError,
    ReproError,
    RuntimeStateError,
    SearchError,
    StoreError,
)
from .core import (
    DNND,
    DNNDResult,
    AdjacencyGraph,
    IncrementalIndex,
    KNNGraph,
    KNNGraphSearcher,
    NNDescent,
    NNDescentResult,
    NeighborHeap,
    SearchResult,
    diversified_optimize_graph,
    make_rp_forest,
    optimize_graph,
)
from .core.dnnd import optimize_from_store
from .core.nndescent import build_knn_graph
from .baselines import HNSW, HNSWConfig, brute_force_knn_graph, brute_force_neighbors
from .distances import CountingMetric, get_metric, list_metrics, register_metric
from .runtime import (
    BlockPartitioner,
    FaultInjector,
    FaultPlan,
    FaultStats,
    HashPartitioner,
    MessageStats,
    MetallStore,
    MetricsRegistry,
    NetworkModel,
    SimCluster,
    YGMWorld,
)
from .datasets import load_dataset, make_benchmark_dataset
from .eval import graph_recall, recall_at_k

__all__ = [
    "__version__",
    "PAPER",
    # configs
    "ClusterConfig",
    "CommOptConfig",
    "DNNDConfig",
    "NNDescentConfig",
    # errors
    "ReproError",
    "ConfigError",
    "MetricError",
    "RuntimeStateError",
    "PartitionError",
    "StoreError",
    "GraphError",
    "SearchError",
    "DatasetError",
    "FaultToleranceError",
    "RankFailureError",
    # core
    "DNND",
    "DNNDResult",
    "NNDescent",
    "NNDescentResult",
    "IncrementalIndex",
    "build_knn_graph",
    "optimize_from_store",
    "KNNGraph",
    "AdjacencyGraph",
    "NeighborHeap",
    "KNNGraphSearcher",
    "SearchResult",
    "optimize_graph",
    "diversified_optimize_graph",
    "make_rp_forest",
    # baselines
    "HNSW",
    "HNSWConfig",
    "brute_force_knn_graph",
    "brute_force_neighbors",
    # distances
    "get_metric",
    "list_metrics",
    "register_metric",
    "CountingMetric",
    # runtime
    "SimCluster",
    "YGMWorld",
    "MetallStore",
    "MessageStats",
    "MetricsRegistry",
    "NetworkModel",
    "HashPartitioner",
    "BlockPartitioner",
    "FaultPlan",
    "FaultInjector",
    "FaultStats",
    # datasets / eval
    "load_dataset",
    "make_benchmark_dataset",
    "graph_recall",
    "recall_at_k",
]
