"""Distance-evaluation counting.

The paper's Section 7 calls for profiling "how much the computation or
communication is heavier than the other"; our cost model charges
simulated compute time *per distance evaluation*, so every algorithm
(NN-Descent, DNND, HNSW, brute force) routes its metric calls through a
:class:`CountingMetric`, making construction cost comparable across
algorithms in a platform-independent unit.

The wrapper is also the kernel dispatch seam (DESIGN.md section 17):
``kernel="rowwise"`` (the default) keeps the bit-exact per-row kernels,
``kernel="blocked"`` swaps the batched forms for the tiled-GEMM kernels
of :mod:`repro.distances.blocked` — same call structure, same counting,
recall-gated instead of bit-identical.  Metrics without a blocked form
(and every sparse metric) silently keep the exact kernels, so the
switch is always safe to flip.
"""

from __future__ import annotations

import numpy as np

from .blocked import kernel_fallbacks, make_kernels, resolve_kernel
from .registry import Metric, get_metric


class CountingMetric:
    """Wraps a :class:`Metric`, counting scalar and batched evaluations.

    ``count`` reports the number of *pairwise distance evaluations*
    performed, regardless of whether they were done one at a time or in a
    vectorized batch — batched calls add the batch size.

    ``kernel`` selects the batched implementations: ``"rowwise"``
    (bit-exact, the default) or ``"blocked"`` (tiled GEMM); ``None``
    defers to the ``REPRO_KERNEL`` environment variable.  Scalar calls
    always use the exact metric — the kernel axis only covers batched
    forms.  ``tile_flops`` and ``kernel_fallbacks`` surface the blocked
    layer's tallies for the ``kernel.*`` metrics.
    """

    def __init__(self, metric, kernel: str | None = None) -> None:
        self._metric: Metric = get_metric(metric)
        self.kernel: str = resolve_kernel(kernel)
        self._blocked = None
        self.kernel_fallbacks: int = 0
        if self.kernel == "blocked" and not self._metric.sparse_input:
            before = kernel_fallbacks()
            self._blocked = make_kernels(self._metric.name)
            self.kernel_fallbacks = kernel_fallbacks() - before
        self.count: int = 0

    @property
    def name(self) -> str:
        return self._metric.name

    @property
    def sparse_input(self) -> bool:
        return self._metric.sparse_input

    @property
    def inner(self) -> Metric:
        return self._metric

    @property
    def tile_flops(self) -> int:
        """FLOPs spent in blocked tile products (0 under ``rowwise``)."""
        return self._blocked.stats.tile_flops if self._blocked is not None else 0

    def __call__(self, a, b) -> float:
        self.count += 1
        return self._metric.scalar(a, b)

    def distances_to(self, q, X) -> np.ndarray:
        if self._blocked is not None:
            out = self._blocked.one_to_many(q, X)
        else:
            out = self._metric.distances_to(q, X)
        self.count += int(out.shape[0])
        return out

    def block(self, A, B) -> np.ndarray:
        if self._blocked is not None:
            out = self._blocked.pairwise(A, B)
        else:
            out = self._metric.block(A, B)
        self.count += int(out.shape[0] * out.shape[1])
        return out

    def rowwise(self, A, B) -> np.ndarray:
        """Paired-rows distances (exact under ``rowwise``, tiled under
        ``blocked`` — see :meth:`Metric.rowwise_dists`), counted as one
        evaluation per row."""
        out = self.rowwise_raw(A, B)
        self.count += int(out.shape[0])
        return out

    def rowwise_raw(self, A, B) -> np.ndarray:
        """Paired-rows distances with NO counting — for speculative batch
        evaluation where the caller charges only the rows it actually
        consumes (keeping ``count`` equal to the scalar execution path)."""
        if self._blocked is not None:
            return self._blocked.rowwise(A, B)
        return self._metric.rowwise_dists(A, B)

    def reset(self) -> int:
        """Reset the counter, returning the value it had."""
        prev = self.count
        self.count = 0
        return prev
