"""Distance-evaluation counting.

The paper's Section 7 calls for profiling "how much the computation or
communication is heavier than the other"; our cost model charges
simulated compute time *per distance evaluation*, so every algorithm
(NN-Descent, DNND, HNSW, brute force) routes its metric calls through a
:class:`CountingMetric`, making construction cost comparable across
algorithms in a platform-independent unit.
"""

from __future__ import annotations

import numpy as np

from .registry import Metric, get_metric


class CountingMetric:
    """Wraps a :class:`Metric`, counting scalar and batched evaluations.

    ``count`` reports the number of *pairwise distance evaluations*
    performed, regardless of whether they were done one at a time or in a
    vectorized batch — batched calls add the batch size.
    """

    def __init__(self, metric) -> None:
        self._metric: Metric = get_metric(metric)
        self.count: int = 0

    @property
    def name(self) -> str:
        return self._metric.name

    @property
    def sparse_input(self) -> bool:
        return self._metric.sparse_input

    @property
    def inner(self) -> Metric:
        return self._metric

    def __call__(self, a, b) -> float:
        self.count += 1
        return self._metric.scalar(a, b)

    def distances_to(self, q, X) -> np.ndarray:
        out = self._metric.distances_to(q, X)
        self.count += int(out.shape[0])
        return out

    def block(self, A, B) -> np.ndarray:
        out = self._metric.block(A, B)
        self.count += int(out.shape[0] * out.shape[1])
        return out

    def rowwise(self, A, B) -> np.ndarray:
        """Paired-rows distances (exact, see :meth:`Metric.rowwise_dists`),
        counted as one evaluation per row."""
        out = self._metric.rowwise_dists(A, B)
        self.count += int(out.shape[0])
        return out

    def rowwise_raw(self, A, B) -> np.ndarray:
        """Paired-rows distances with NO counting — for speculative batch
        evaluation where the caller charges only the rows it actually
        consumes (keeping ``count`` equal to the scalar execution path)."""
        return self._metric.rowwise_dists(A, B)

    def reset(self) -> int:
        """Reset the counter, returning the value it had."""
        prev = self.count
        self.count = 0
        return prev
