"""Blocked GEMM distance kernels behind an ``xp`` array-module seam.

PR 3's rowwise kernels made the batch hot path vectorized but still
row-at-a-time: every paired-rows call pays one reduction per row with no
data reuse across rows.  Following the tiled-GEMM restructuring of
Kluser et al. (single-core k-NN) and Wang et al. (GPU k-NN graphs), this
module evaluates distances through the expansion

    ``||x - y||^2 = ||x||^2 - 2 * x.y + ||y||^2``

tile-at-a-time: the ``-2 X @ Y.T`` term becomes a sequence of dense
matrix-matrix products over row tiles sized to the L2 / BLAS sweet spot,
and the squared-norm vectors are computed once and cached per dataset
(:class:`NormCache`).  Cosine and inner-product get the analogous Gram
forms; metrics with no product structure (manhattan, chebyshev, hamming,
...) have no blocked form and callers fall back to the exact kernels.

Exactness contract (DESIGN.md section 17): the blocked kernels compute
in the *native input dtype* — that is where the throughput comes from —
so they are **not** bit-identical to the float64 scalar/rowwise path.
The default construction kernel therefore stays ``"rowwise"`` (golden
trace bit-identical); ``"blocked"`` is gated by recall parity (<=0.005)
instead.  Squared-euclidean with one tile covering the whole input *is*
bit-identical to :func:`repro.distances.dense.sqeuclidean_pairwise` on
float64 input (same term order, same BLAS product, same clamp).  The
float32 expansion can go slightly negative for near-duplicate points
(catastrophic cancellation of ``-2xy`` against the norms); every blocked
form clamps at zero before any ``sqrt``.

The ``xp`` seam: kernels address their array library through an
:class:`ArrayModule` — numpy by default, with CuPy / torch attachable
behind the same five-operation surface.  A requested module that is not
installed falls back to numpy with a :class:`RuntimeWarning` and a bump
of the module-level fallback counter, published per build as the
``kernel.fallbacks`` metric (same contract as ``backend.fallbacks``).

Registration: each metric's blocked forms are closures over attach-time
kernel state (array module, norm cache, FLOP tally, tile override),
declared through :func:`register_kernel`.  The analysis engine indexes
these declarations into ``ProjectContext.kernel_helpers`` and REP203
holds them to the *pure batch variant* contract: a kernel closure may
capture its factory's parameters (replicated, attach-time state) but
never enclosing mutable locals.
"""

from __future__ import annotations

import os
import warnings
import weakref
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from ..errors import ConfigError

KERNEL_ENV = "REPRO_KERNEL"
KERNELS = ("rowwise", "blocked")

XP_ENV = "REPRO_XP"
XP_MODULES = ("numpy", "cupy", "torch")


def resolve_kernel(kernel: Optional[str],
                   env: Optional[Dict[str, str]] = None) -> str:
    """Resolve a configured kernel name: explicit config value wins,
    then the ``REPRO_KERNEL`` environment variable, then ``"rowwise"``
    (the bit-exact default)."""
    environ = os.environ if env is None else env
    if kernel is None:
        kernel = environ.get(KERNEL_ENV, "").strip().lower() or "rowwise"
    if kernel not in KERNELS:
        raise ConfigError(
            f"unknown distance kernel {kernel!r}; expected one of "
            f"{'/'.join(KERNELS)}")
    return kernel


# ---------------------------------------------------------------------------
# The xp seam
# ---------------------------------------------------------------------------


def _identity(a):
    return a


class ArrayModule:
    """One attachment point of the ``xp`` seam.

    ``xp`` is a numpy-compatible namespace (``einsum``, ``sqrt``,
    ``where``, the ``@`` operator); ``from_numpy``/``to_numpy`` move
    operands across the host/device boundary (identities for numpy);
    ``clamp0`` is the in-place clamp-at-zero each library spells
    differently.  The kernels touch nothing else, so a new library
    attaches by providing these five operations.
    """

    def __init__(self, name: str, xp,
                 from_numpy: Optional[Callable] = None,
                 to_numpy: Optional[Callable] = None,
                 clamp0: Optional[Callable] = None) -> None:
        self.name = name
        self.xp = xp
        self.from_numpy = from_numpy if from_numpy is not None else _identity
        self.to_numpy = to_numpy if to_numpy is not None else np.asarray
        self.clamp0 = clamp0 if clamp0 is not None else self._np_clamp0

    @staticmethod
    def _np_clamp0(a):
        return np.maximum(a, 0, out=a)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArrayModule({self.name!r})"


NUMPY = ArrayModule("numpy", np)

#: Cumulative count of requested-but-unavailable array modules resolved
#: to numpy in this process; builds publish their delta as
#: ``kernel.fallbacks``.
_fallbacks = 0


def kernel_fallbacks() -> int:
    """Process-cumulative fallback count (see :func:`resolve_array_module`)."""
    return _fallbacks


def resolve_array_module(name: Optional[str] = None,
                         env: Optional[Dict[str, str]] = None) -> ArrayModule:
    """Resolve the ``xp`` module: explicit name wins, then ``REPRO_XP``,
    then numpy.  A known-but-uninstalled module falls back to numpy with
    a warning and a fallback-counter bump — builds keep working on
    machines without the accelerator stack."""
    global _fallbacks
    environ = os.environ if env is None else env
    requested = (name or environ.get(XP_ENV, "").strip() or "numpy").lower()
    if requested in ("numpy", "np"):
        return NUMPY
    if requested not in XP_MODULES:
        raise ConfigError(
            f"unknown array module {requested!r}; expected one of "
            f"{'/'.join(XP_MODULES)}")
    try:
        if requested == "cupy":
            import cupy
            return ArrayModule(
                "cupy", cupy, from_numpy=cupy.asarray, to_numpy=cupy.asnumpy,
                clamp0=lambda a: cupy.maximum(a, 0, out=a))
        import torch
        return ArrayModule(
            "torch", torch, from_numpy=torch.as_tensor,
            to_numpy=lambda a: a.cpu().numpy(),
            clamp0=lambda a: a.clamp_(min=0))
    except ImportError:
        _fallbacks += 1
        warnings.warn(
            f"array module {requested!r} is not installed; blocked kernels "
            f"fall back to numpy (counted in kernel.fallbacks)",
            RuntimeWarning, stacklevel=2)
        return NUMPY


# ---------------------------------------------------------------------------
# Tile heuristic + norm cache
# ---------------------------------------------------------------------------

#: Working-set target for one tile pair: the two ``(t, d)`` operand
#: panels plus the ``(t, t)`` product block should fit a per-core L2
#: slice.  256 KiB is the common slice size across current x86/ARM
#: server parts, and BLAS packing kernels hit stride at row multiples
#: of 16 — the heuristic rounds accordingly.
TILE_TARGET_BYTES = 256 * 1024


def tile_size_for(dim: int, itemsize: int,
                  target_bytes: int = TILE_TARGET_BYTES) -> int:
    """Rows per tile so ``2*t*d + t*t`` elements stay near ``target_bytes``,
    rounded down to a multiple of 16 and clamped to ``[16, 1024]``."""
    dim = max(1, int(dim))
    itemsize = max(1, int(itemsize))
    panels = target_bytes // (2 * dim * itemsize)
    square = int((target_bytes // itemsize) ** 0.5)
    t = max(16, min(1024, panels, square))
    return max(16, t - (t % 16))


class NormCache:
    """Cached squared row norms, keyed by array identity.

    Brute force and the searcher hand the *same* dataset array to the
    kernels call after call; caching ``||y||^2`` per array removes one
    of the three expansion terms from every subsequent call.  Entries
    are keyed by ``id(array)`` and guarded by a weak reference — ids
    are reused after garbage collection, so a hit requires the weakref
    to still resolve to the identical object (dead entries self-evict
    through the weakref callback).

    The cache cannot see in-place writes: callers that mutate a cached
    dataset must call :meth:`update_rows` (targeted recompute) or
    :meth:`invalidate` before the next kernel call, or reads are stale.
    Non-weakref-able inputs are computed fresh each call, never cached.
    """

    def __init__(self, ops: ArrayModule = NUMPY) -> None:
        self._ops = ops
        self._entries: Dict[int, tuple] = {}
        self.hits = 0
        self.misses = 0

    def _sqnorms(self, X):
        return self._ops.xp.einsum("ij,ij->i", X, X)

    def norms(self, X):
        """Squared L2 norm of each row of ``X``, in its native dtype."""
        key = id(X)
        entry = self._entries.get(key)
        if entry is not None and entry[0]() is X:
            self.hits += 1
            return entry[1]
        norms = self._sqnorms(X)
        self.misses += 1
        try:
            ref = weakref.ref(X, lambda _r: self._entries.pop(key, None))
        except TypeError:
            return norms
        self._entries[key] = (ref, norms)
        return norms

    def update_rows(self, X, rows) -> None:
        """Recompute the cached norms of ``rows`` after an in-place row
        update of ``X``; a no-op when ``X`` is not cached."""
        entry = self._entries.get(id(X))
        if entry is None or entry[0]() is not X:
            return
        entry[1][rows] = self._sqnorms(X[rows])

    def invalidate(self, X=None) -> None:
        """Drop the entry for ``X`` (or every entry when ``X is None``)."""
        if X is None:
            self._entries.clear()
            return
        self._entries.pop(id(X), None)

    def __len__(self) -> int:
        return len(self._entries)


# ---------------------------------------------------------------------------
# Kernel bundles
# ---------------------------------------------------------------------------


@dataclass
class KernelStats:
    """Mutable tally a bundle's closures update in place.

    ``tile_flops`` counts the multiply-add FLOPs of the product terms
    actually computed (``2 * rows * cols * d`` per tile GEMM, ``2 * n *
    d`` per rowwise / one-to-many product); norm computations are the
    cached, amortizable part and are not charged.  Published at barriers
    as the ``kernel.tile_flops`` counter.
    """

    tile_flops: int = 0


@dataclass(frozen=True)
class KernelBundle:
    """The blocked forms of one metric, bound to an array module, a norm
    cache, and a FLOP tally at attach time."""

    name: str
    pairwise: Callable
    rowwise: Callable
    one_to_many: Callable
    ops: ArrayModule
    cache: NormCache
    stats: KernelStats = field(default_factory=KernelStats)


def register_kernel(name: str, *, pairwise, rowwise, one_to_many,
                    ops: ArrayModule, cache: NormCache,
                    stats: KernelStats) -> KernelBundle:
    """Declare the blocked forms of one metric as a :class:`KernelBundle`.

    This is also the linter's registration point: the analysis engine
    indexes ``register_kernel`` bindings into
    ``ProjectContext.kernel_helpers``, and REP203 audits them under the
    pure-batch-variant contract — the registered closures may capture
    only their factory's parameters (attach-time kernel state, identical
    on every rank), never enclosing mutable locals.
    """
    return KernelBundle(name=name, pairwise=pairwise, rowwise=rowwise,
                        one_to_many=one_to_many, ops=ops, cache=cache,
                        stats=stats)


# -- shared implementation helpers (plain functions, all state explicit) ----


def _pair_rows(a, b):
    """Broadcast a 1-D side against the other's rows, native dtype."""
    A = np.asarray(a)
    B = np.asarray(b)
    if A.ndim == 1:
        A = np.broadcast_to(A, B.shape)
    elif B.ndim == 1:
        B = np.broadcast_to(B, A.shape)
    return A, B


def _rowwise_terms(ops: ArrayModule, stats: KernelStats, a, b):
    """``(na, nb, ab, n)`` for paired rows: squared norms of each side
    and the per-row inner product, native dtype.  Either side may be a
    single broadcast vector — its norm is computed once, not per row."""
    xp = ops.xp
    A, B = _pair_rows(a, b)
    n = A.shape[0]
    if n == 0:
        zero = np.zeros(0)
        return zero, zero, zero, 0
    dim = A.shape[1]
    A = ops.from_numpy(A)
    B = ops.from_numpy(B)
    # A stride-0 broadcast side reduces every identical row; one dot of
    # the base vector is enough.
    na = (xp.einsum("j,j->", A[0], A[0]) if _is_broadcast(a, b)
          else xp.einsum("ij,ij->i", A, A))
    nb = (xp.einsum("j,j->", B[0], B[0]) if _is_broadcast(b, a)
          else xp.einsum("ij,ij->i", B, B))
    ab = xp.einsum("ij,ij->i", A, B)
    stats.tile_flops += 2 * n * dim
    return na, nb, ab, n


def _is_broadcast(side, other) -> bool:
    return (getattr(side, "ndim", 2) == 1
            and getattr(other, "ndim", 2) != 1)


def _sq_pairwise_impl(ops: ArrayModule, cache: NormCache, stats: KernelStats,
                      tile: Optional[int], A, B) -> np.ndarray:
    """Tiled ``||a||^2 + ||b||^2 - 2 a.b`` over rows of A x rows of B.

    Arithmetic runs in the native input dtype (the GEMM win); the
    returned matrix is float64 like every other pairwise form.  One tile
    covering the whole float64 input is bit-identical to
    ``dense.sqeuclidean_pairwise`` (same term order, same products)."""
    A = np.asarray(A)
    B = np.asarray(B)
    n, m = A.shape[0], B.shape[0]
    out = np.empty((n, m), dtype=np.float64)
    if n == 0 or m == 0:
        return out
    dim = A.shape[1]
    t = tile if tile else tile_size_for(dim, A.dtype.itemsize)
    dev_a = ops.from_numpy(A)
    dev_b = ops.from_numpy(B)
    na = cache.norms(dev_a)
    nb = cache.norms(dev_b)
    for i0 in range(0, n, t):
        i1 = min(n, i0 + t)
        ai = dev_a[i0:i1]
        nai = na[i0:i1]
        for j0 in range(0, m, t):
            j1 = min(m, j0 + t)
            gram = ai @ dev_b[j0:j1].T
            block = nai[:, None] + nb[None, j0:j1] - 2.0 * gram
            ops.clamp0(block)
            out[i0:i1, j0:j1] = ops.to_numpy(block)
            stats.tile_flops += 2 * (i1 - i0) * (j1 - j0) * dim
    return out


def _sq_one_to_many_impl(ops: ArrayModule, cache: NormCache,
                         stats: KernelStats, q, X) -> np.ndarray:
    xp = ops.xp
    X = np.asarray(X)
    q = np.asarray(q)
    if X.shape[0] == 0:
        return np.empty(0, dtype=np.float64)
    dev_x = ops.from_numpy(X)
    dev_q = ops.from_numpy(q)
    nx = cache.norms(dev_x)
    nq = xp.einsum("j,j->", dev_q, dev_q)
    prod = dev_x @ dev_q
    stats.tile_flops += 2 * X.shape[0] * X.shape[1]
    out = nq + nx - 2.0 * prod
    ops.clamp0(out)
    return ops.to_numpy(out).astype(np.float64, copy=False)


def _cos_pairwise_impl(ops: ArrayModule, cache: NormCache, stats: KernelStats,
                       tile: Optional[int], A, B) -> np.ndarray:
    xp = ops.xp
    A = np.asarray(A)
    B = np.asarray(B)
    n, m = A.shape[0], B.shape[0]
    out = np.empty((n, m), dtype=np.float64)
    if n == 0 or m == 0:
        return out
    dim = A.shape[1]
    t = tile if tile else tile_size_for(dim, A.dtype.itemsize)
    dev_a = ops.from_numpy(A)
    dev_b = ops.from_numpy(B)
    na = xp.sqrt(cache.norms(dev_a))
    nb = xp.sqrt(cache.norms(dev_b))
    # Zero-norm rows: similarity 0 -> distance 1 (the registry convention).
    na_safe = xp.where(na == 0, na + 1.0, na)
    nb_safe = xp.where(nb == 0, nb + 1.0, nb)
    zero_a = ops.to_numpy(na) == 0
    zero_b = ops.to_numpy(nb) == 0
    for i0 in range(0, n, t):
        i1 = min(n, i0 + t)
        ai = dev_a[i0:i1]
        for j0 in range(0, m, t):
            j1 = min(m, j0 + t)
            sims = ai @ dev_b[j0:j1].T
            sims = sims / na_safe[i0:i1, None]
            sims = sims / nb_safe[None, j0:j1]
            block = 1.0 - sims
            ops.clamp0(block)
            out[i0:i1, j0:j1] = ops.to_numpy(block)
            stats.tile_flops += 2 * (i1 - i0) * (j1 - j0) * dim
    out[zero_a, :] = 1.0
    out[:, zero_b] = 1.0
    return out


def _cos_rowwise_impl(ops: ArrayModule, stats: KernelStats, a, b) -> np.ndarray:
    xp = ops.xp
    na, nb, ab, n = _rowwise_terms(ops, stats, a, b)
    if n == 0:
        return np.empty(0, dtype=np.float64)
    na = xp.sqrt(na)
    nb = xp.sqrt(nb)
    denom = na * nb
    zero = ops.to_numpy(denom) == 0
    denom = xp.where(denom == 0, denom + 1.0, denom)
    sim = ab / denom
    out = 1.0 - sim
    ops.clamp0(out)
    out = ops.to_numpy(out).astype(np.float64, copy=False)
    out[zero] = 1.0
    return out


def _ip_pairwise_impl(ops: ArrayModule, stats: KernelStats,
                      tile: Optional[int], A, B) -> np.ndarray:
    A = np.asarray(A)
    B = np.asarray(B)
    n, m = A.shape[0], B.shape[0]
    out = np.empty((n, m), dtype=np.float64)
    if n == 0 or m == 0:
        return out
    dim = A.shape[1]
    t = tile if tile else tile_size_for(dim, A.dtype.itemsize)
    dev_a = ops.from_numpy(A)
    dev_b = ops.from_numpy(B)
    for i0 in range(0, n, t):
        i1 = min(n, i0 + t)
        ai = dev_a[i0:i1]
        for j0 in range(0, m, t):
            j1 = min(m, j0 + t)
            out[i0:i1, j0:j1] = ops.to_numpy(1.0 - ai @ dev_b[j0:j1].T)
            stats.tile_flops += 2 * (i1 - i0) * (j1 - j0) * dim
    return out


# -- per-metric factories ---------------------------------------------------
#
# Each factory binds (ops, cache, stats, tile) once and declares thin
# closures over exactly those parameters — the pure-batch-variant shape
# REP203 audits via the register_kernel index.


def _sqeuclidean_factory(ops: ArrayModule, cache: NormCache,
                         stats: KernelStats,
                         tile: Optional[int]) -> KernelBundle:
    def sqeuclidean_blocked(A, B):
        return _sq_pairwise_impl(ops, cache, stats, tile, A, B)

    def sqeuclidean_rowwise_blocked(a, b):
        na, nb, ab, n = _rowwise_terms(ops, stats, a, b)
        if n == 0:
            return np.empty(0, dtype=np.float64)
        out = na + nb - 2.0 * ab
        ops.clamp0(out)
        return ops.to_numpy(out).astype(np.float64, copy=False)

    def sqeuclidean_one_to_many_blocked(q, X):
        return _sq_one_to_many_impl(ops, cache, stats, q, X)

    return register_kernel(
        "sqeuclidean", ops=ops, cache=cache, stats=stats,
        pairwise=sqeuclidean_blocked,
        rowwise=sqeuclidean_rowwise_blocked,
        one_to_many=sqeuclidean_one_to_many_blocked)


def _euclidean_factory(ops: ArrayModule, cache: NormCache,
                       stats: KernelStats,
                       tile: Optional[int]) -> KernelBundle:
    def euclidean_blocked(A, B):
        return np.sqrt(_sq_pairwise_impl(ops, cache, stats, tile, A, B))

    def euclidean_rowwise_blocked(a, b):
        na, nb, ab, n = _rowwise_terms(ops, stats, a, b)
        if n == 0:
            return np.empty(0, dtype=np.float64)
        out = na + nb - 2.0 * ab
        ops.clamp0(out)
        return np.sqrt(ops.to_numpy(out).astype(np.float64, copy=False))

    def euclidean_one_to_many_blocked(q, X):
        return np.sqrt(_sq_one_to_many_impl(ops, cache, stats, q, X))

    return register_kernel(
        "euclidean", ops=ops, cache=cache, stats=stats,
        pairwise=euclidean_blocked,
        rowwise=euclidean_rowwise_blocked,
        one_to_many=euclidean_one_to_many_blocked)


def _cosine_factory(ops: ArrayModule, cache: NormCache, stats: KernelStats,
                    tile: Optional[int]) -> KernelBundle:
    def cosine_blocked(A, B):
        return _cos_pairwise_impl(ops, cache, stats, tile, A, B)

    def cosine_rowwise_blocked(a, b):
        return _cos_rowwise_impl(ops, stats, a, b)

    def cosine_one_to_many_blocked(q, X):
        return _cos_pairwise_impl(
            ops, cache, stats, tile, np.asarray(q)[None, :], X)[0]

    return register_kernel(
        "cosine", ops=ops, cache=cache, stats=stats,
        pairwise=cosine_blocked,
        rowwise=cosine_rowwise_blocked,
        one_to_many=cosine_one_to_many_blocked)


def _inner_product_factory(ops: ArrayModule, cache: NormCache,
                           stats: KernelStats,
                           tile: Optional[int]) -> KernelBundle:
    def inner_product_blocked(A, B):
        return _ip_pairwise_impl(ops, stats, tile, A, B)

    def inner_product_rowwise_blocked(a, b):
        _na, _nb, ab, n = _rowwise_terms(ops, stats, a, b)
        if n == 0:
            return np.empty(0, dtype=np.float64)
        return ops.to_numpy(1.0 - ab).astype(np.float64, copy=False)

    def inner_product_one_to_many_blocked(q, X):
        X = np.asarray(X)
        if X.shape[0] == 0:
            return np.empty(0, dtype=np.float64)
        prod = ops.from_numpy(X) @ ops.from_numpy(np.asarray(q))
        stats.tile_flops += 2 * X.shape[0] * X.shape[1]
        return ops.to_numpy(1.0 - prod).astype(np.float64, copy=False)

    return register_kernel(
        "inner_product", ops=ops, cache=cache, stats=stats,
        pairwise=inner_product_blocked,
        rowwise=inner_product_rowwise_blocked,
        one_to_many=inner_product_one_to_many_blocked)


#: Metrics with a blocked (GEMM-structured) form.  Everything else —
#: elementwise metrics with no product decomposition and the sparse
#: family — keeps the exact kernels under ``kernel="blocked"`` too.
_FACTORIES: Dict[str, Callable] = {
    "sqeuclidean": _sqeuclidean_factory,
    "euclidean": _euclidean_factory,
    "cosine": _cosine_factory,
    "inner_product": _inner_product_factory,
}


def blocked_metrics() -> tuple:
    """Names of the metrics that have blocked forms."""
    return tuple(sorted(_FACTORIES))


def make_kernels(name: str, ops: Optional[ArrayModule] = None,
                 cache: Optional[NormCache] = None,
                 tile: Optional[int] = None) -> Optional[KernelBundle]:
    """Blocked kernel bundle for metric ``name``, or ``None`` when the
    metric has no blocked form.  ``ops`` defaults to
    :func:`resolve_array_module` (``REPRO_XP``-sensitive); ``tile``
    overrides the per-call size heuristic (tests use this — any tile
    size yields the same neighbor sets)."""
    factory = _FACTORIES.get(str(name).lower())
    if factory is None:
        return None
    ops = ops if ops is not None else resolve_array_module()
    cache = cache if cache is not None else NormCache(ops)
    return factory(ops, cache, KernelStats(), tile)
