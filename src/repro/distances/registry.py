"""Named metric registry.

A :class:`Metric` bundles the three forms a metric can take — scalar,
one-to-many, and pairwise-block — plus metadata (whether it operates on
dense matrices or sparse set records).  Algorithms look metrics up by
name so that configs remain plain data (Section 5.1's "Similarity
Metric" column maps directly onto these names).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from ..errors import MetricError
from . import dense, sparse


@dataclass(frozen=True)
class Metric:
    """A registered distance metric.

    Attributes
    ----------
    name:
        Registry key (lowercase).
    scalar:
        ``theta(a, b) -> float`` — the Section 2 distance function.
    one_to_many:
        Vectorized ``theta(q, X) -> (n,)`` or ``None`` if unavailable.
    pairwise:
        Vectorized block form ``theta(A, B) -> (n, m)`` or ``None``.
    rowwise:
        Paired-rows form ``theta(A[i], B[i]) -> (n,)`` that is
        *bit-identical* to calling ``scalar`` per row (either side may
        be a single broadcast vector), or ``None``.  This is the only
        batched form the construction hot path may use: the batch
        execution engine relies on it to keep batched builds equal to
        scalar builds down to the last float bit.
    sparse_input:
        True for set-valued metrics (Jaccard family).
    """

    name: str
    scalar: Callable[[np.ndarray, np.ndarray], float]
    one_to_many: Optional[Callable[[np.ndarray, np.ndarray], np.ndarray]] = None
    pairwise: Optional[Callable[[np.ndarray, np.ndarray], np.ndarray]] = None
    rowwise: Optional[Callable[[np.ndarray, np.ndarray], np.ndarray]] = None
    sparse_input: bool = False

    def __call__(self, a: np.ndarray, b: np.ndarray) -> float:
        return self.scalar(a, b)

    def rowwise_dists(self, A, B) -> np.ndarray:
        """Paired-rows distances, exact: uses ``rowwise`` when present,
        otherwise a scalar loop (bit-identical by construction)."""
        if self.rowwise is not None and not self.sparse_input:
            return self.rowwise(A, B)
        scalar = self.scalar
        a_single = getattr(A, "ndim", 2) == 1
        b_single = getattr(B, "ndim", 2) == 1
        if a_single:
            return np.array([scalar(A, b) for b in B], dtype=np.float64)
        if b_single:
            return np.array([scalar(a, B) for a in A], dtype=np.float64)
        return np.array([scalar(a, b) for a, b in zip(A, B)], dtype=np.float64)

    def distances_to(self, q: np.ndarray, X) -> np.ndarray:
        """One-to-many distances, vectorized when possible."""
        if self.one_to_many is not None and not self.sparse_input:
            return self.one_to_many(q, X)
        return np.array([self.scalar(q, X[i]) for i in range(len(X))], dtype=np.float64)

    def block(self, A, B) -> np.ndarray:
        """Pairwise block, vectorized when possible."""
        if self.pairwise is not None and not self.sparse_input:
            return self.pairwise(A, B)
        out = np.empty((len(A), len(B)), dtype=np.float64)
        for i in range(len(A)):
            for j in range(len(B)):
                out[i, j] = self.scalar(A[i], B[j])
        return out


_REGISTRY: Dict[str, Metric] = {}


def register_metric(metric: Metric, overwrite: bool = False) -> Metric:
    """Register a metric; raises on duplicate names unless ``overwrite``."""
    key = metric.name.lower()
    if key in _REGISTRY and not overwrite:
        raise MetricError(f"metric {key!r} already registered")
    _REGISTRY[key] = metric
    return metric


def get_metric(name) -> Metric:
    """Look up a metric by name (case-insensitive); passes Metric through."""
    if isinstance(name, Metric):
        return name
    key = str(name).lower()
    # Friendly aliases seen in ANN-Benchmarks configs.
    aliases = {
        "l2": "euclidean",
        "angular": "cosine",
        "ip": "inner_product",
        "dot": "inner_product",
        "l1": "manhattan",
        "linf": "chebyshev",
    }
    key = aliases.get(key, key)
    try:
        return _REGISTRY[key]
    except KeyError:
        raise MetricError(
            f"unknown metric {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def list_metrics() -> List[str]:
    return sorted(_REGISTRY)


# ---------------------------------------------------------------------------
# Built-in registrations
# ---------------------------------------------------------------------------

register_metric(Metric(
    "euclidean", dense.euclidean, dense.euclidean_one_to_many,
    dense.euclidean_pairwise, dense.euclidean_rowwise))
register_metric(Metric(
    "sqeuclidean", dense.sqeuclidean, dense.sqeuclidean_one_to_many,
    dense.sqeuclidean_pairwise, dense.sqeuclidean_rowwise))
register_metric(Metric(
    "cosine", dense.cosine, dense.cosine_one_to_many, dense.cosine_pairwise,
    dense.cosine_rowwise))
register_metric(Metric(
    "inner_product", dense.inner_product, dense.inner_product_one_to_many,
    dense.inner_product_pairwise, dense.inner_product_rowwise))
register_metric(Metric(
    "manhattan", dense.manhattan, dense.manhattan_one_to_many,
    dense.manhattan_pairwise, dense.manhattan_rowwise))
register_metric(Metric(
    "chebyshev", dense.chebyshev, dense.chebyshev_one_to_many,
    dense.chebyshev_pairwise, dense.chebyshev_rowwise))
register_metric(Metric(
    "hamming", dense.hamming, dense.hamming_one_to_many,
    dense.hamming_pairwise, dense.hamming_rowwise))
register_metric(Metric("canberra", dense.canberra, dense.canberra_one_to_many))
register_metric(Metric("braycurtis", dense.braycurtis, dense.braycurtis_one_to_many))
register_metric(Metric(
    "correlation", dense.correlation, dense.correlation_one_to_many))
register_metric(Metric("jaccard", sparse.jaccard, sparse_input=True))
register_metric(Metric("dice", sparse.dice, sparse_input=True))
register_metric(Metric("overlap", sparse.overlap, sparse_input=True))
