"""Dense-vector metrics: scalar and batched forms.

Scalar forms take two 1-D arrays and return a Python float — this is the
unit of work charged by the simulated cost model (one "distance
evaluation" in the paper's sense).  Batched forms compute one-vs-many or
many-vs-many distances with numpy broadcasting; they are used by the
shared-memory NN-Descent, the brute-force baseline, and the query
program, where the paper's implementations are also vectorized (C++/
OpenMP / numba).

All metrics return values in ``[0, inf)`` with smaller = closer, per
Section 2.  Cosine and inner-product similarities are converted to
distances accordingly.
"""

from __future__ import annotations

import numpy as np

# ---------------------------------------------------------------------------
# Scalar metrics
# ---------------------------------------------------------------------------


def sqeuclidean(a: np.ndarray, b: np.ndarray) -> float:
    """Squared L2 distance (monotone in L2; cheaper, same neighbor order)."""
    d = np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64)
    return float(np.dot(d, d))


def euclidean(a: np.ndarray, b: np.ndarray) -> float:
    """L2 distance — the metric of MNIST/Fashion-MNIST/DEEP1B/BigANN."""
    return float(np.sqrt(sqeuclidean(a, b)))


def manhattan(a: np.ndarray, b: np.ndarray) -> float:
    """L1 distance."""
    return float(np.abs(np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64)).sum())


def chebyshev(a: np.ndarray, b: np.ndarray) -> float:
    """L-infinity distance."""
    return float(np.abs(np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64)).max())


def cosine(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine *distance*: ``1 - cos_sim`` — GloVe/NYTimes/Last.fm metric.

    Zero vectors are treated as maximally distant from everything
    (distance 1), matching pynndescent's convention.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    na = np.sqrt(np.dot(a, a))
    nb = np.sqrt(np.dot(b, b))
    if na == 0.0 or nb == 0.0:
        return 1.0
    sim = np.dot(a, b) / (na * nb)
    return float(max(0.0, 1.0 - sim))


def inner_product(a: np.ndarray, b: np.ndarray) -> float:
    """Negative-inner-product distance shifted to be >= 0 is impossible in
    general; we follow hnswlib's IP space: ``1 - <a, b>`` (callers using
    it are expected to normalize or accept negative values clipped at 0
    only for display)."""
    return float(1.0 - np.dot(np.asarray(a, dtype=np.float64), np.asarray(b, dtype=np.float64)))


def hamming(a: np.ndarray, b: np.ndarray) -> float:
    """Normalized Hamming distance over equal-length discrete vectors."""
    a = np.asarray(a)
    b = np.asarray(b)
    return float(np.count_nonzero(a != b)) / float(a.shape[0])


def canberra(a: np.ndarray, b: np.ndarray) -> float:
    """Canberra distance: sum |a-b| / (|a|+|b|), zero-denominator terms
    contribute 0 (scipy's convention)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    denom = np.abs(a) + np.abs(b)
    mask = denom > 0
    return float((np.abs(a - b)[mask] / denom[mask]).sum())


def braycurtis(a: np.ndarray, b: np.ndarray) -> float:
    """Bray-Curtis dissimilarity: sum|a-b| / sum|a+b| (0 when both sums
    vanish)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    denom = np.abs(a + b).sum()
    if denom == 0.0:
        return 0.0
    return float(np.abs(a - b).sum() / denom)


def correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Correlation distance: cosine distance of the mean-centered
    vectors (constant vectors are maximally distant, distance 1)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return cosine(a - a.mean(), b - b.mean())


def make_minkowski(p: float):
    """Factory for an L_p (Minkowski) distance, ``p >= 1``.

    Register the result to use it by name::

        register_metric(Metric("minkowski3", make_minkowski(3)))
    """
    if p < 1:
        raise ValueError(f"Minkowski requires p >= 1, got {p}")

    def minkowski(a: np.ndarray, b: np.ndarray) -> float:
        d = np.abs(np.asarray(a, dtype=np.float64)
                   - np.asarray(b, dtype=np.float64))
        return float((d ** p).sum() ** (1.0 / p))

    minkowski.__name__ = f"minkowski_p{p}"
    return minkowski


# ---------------------------------------------------------------------------
# Batched metrics: one query against a matrix of rows
# ---------------------------------------------------------------------------


def sqeuclidean_one_to_many(q: np.ndarray, X: np.ndarray) -> np.ndarray:
    d = X.astype(np.float64, copy=False) - np.asarray(q, dtype=np.float64)
    return np.einsum("ij,ij->i", d, d)


def euclidean_one_to_many(q: np.ndarray, X: np.ndarray) -> np.ndarray:
    return np.sqrt(sqeuclidean_one_to_many(q, X))


def manhattan_one_to_many(q: np.ndarray, X: np.ndarray) -> np.ndarray:
    return np.abs(X.astype(np.float64, copy=False) - np.asarray(q, dtype=np.float64)).sum(axis=1)


def chebyshev_one_to_many(q: np.ndarray, X: np.ndarray) -> np.ndarray:
    return np.abs(X.astype(np.float64, copy=False) - np.asarray(q, dtype=np.float64)).max(axis=1)


def cosine_one_to_many(q: np.ndarray, X: np.ndarray) -> np.ndarray:
    q = np.asarray(q, dtype=np.float64)
    Xf = X.astype(np.float64, copy=False)
    nq = np.sqrt(np.dot(q, q))
    nx = np.sqrt(np.einsum("ij,ij->i", Xf, Xf))
    out = np.ones(Xf.shape[0], dtype=np.float64)
    if nq == 0.0:
        return out
    nonzero = nx > 0
    sims = (Xf[nonzero] @ q) / (nx[nonzero] * nq)
    out[nonzero] = np.maximum(0.0, 1.0 - sims)
    return out


def inner_product_one_to_many(q: np.ndarray, X: np.ndarray) -> np.ndarray:
    return 1.0 - X.astype(np.float64, copy=False) @ np.asarray(q, dtype=np.float64)


def hamming_one_to_many(q: np.ndarray, X: np.ndarray) -> np.ndarray:
    return np.count_nonzero(X != np.asarray(q), axis=1) / float(X.shape[1])


def canberra_one_to_many(q: np.ndarray, X: np.ndarray) -> np.ndarray:
    qf = np.asarray(q, dtype=np.float64)
    Xf = X.astype(np.float64, copy=False)
    denom = np.abs(Xf) + np.abs(qf)
    num = np.abs(Xf - qf)
    with np.errstate(invalid="ignore", divide="ignore"):
        terms = np.where(denom > 0, num / denom, 0.0)
    return terms.sum(axis=1)


def braycurtis_one_to_many(q: np.ndarray, X: np.ndarray) -> np.ndarray:
    qf = np.asarray(q, dtype=np.float64)
    Xf = X.astype(np.float64, copy=False)
    denom = np.abs(Xf + qf).sum(axis=1)
    num = np.abs(Xf - qf).sum(axis=1)
    out = np.zeros(Xf.shape[0], dtype=np.float64)
    nz = denom > 0
    out[nz] = num[nz] / denom[nz]
    return out


def correlation_one_to_many(q: np.ndarray, X: np.ndarray) -> np.ndarray:
    qf = np.asarray(q, dtype=np.float64)
    Xf = X.astype(np.float64, copy=False)
    return cosine_one_to_many(qf - qf.mean(),
                              Xf - Xf.mean(axis=1, keepdims=True))


# ---------------------------------------------------------------------------
# Rowwise kernels: theta(A[i], B[i]) for paired rows, bit-identical to the
# scalar forms
# ---------------------------------------------------------------------------
#
# The batch execution engine (PR 3) replaces per-message scalar metric
# calls with one vectorized evaluation per delivery batch, but the
# batched build must stay *bit-identical* to the scalar build.  The
# einsum / Gram-trick forms above do not qualify: their reduction order
# differs from ``np.dot`` by a few ULPs.  Row-at-a-time ``matmul``
# (``(1, d) @ (d, 1)``) goes through the same dot-product reduction as
# the scalar ``np.dot`` and is observed bitwise-equal across dtypes and
# dimensions (covered by tests/unit/test_distances_dense.py).  Sum- and
# max-reductions along axis 1 are likewise bitwise-equal to their 1-D
# forms.  Metrics whose scalar form masks elements before reducing
# (canberra) or reduces twice (braycurtis, correlation) change summation
# grouping under compaction and get no rowwise form — callers fall back
# to the scalar loop.
#
# Either argument may be a single vector; it is broadcast against the
# other argument's rows, matching ``theta(q, X[i])`` one-vs-many use.


def _rows64(a, b):
    """Promote to float64 and broadcast a 1-D side to the other's rows."""
    A = np.asarray(a, dtype=np.float64)
    B = np.asarray(b, dtype=np.float64)
    if A.ndim == 1:
        A = np.broadcast_to(A, B.shape)
    elif B.ndim == 1:
        B = np.broadcast_to(B, A.shape)
    return A, B


def _rowwise_dot(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """``dot(A[i], B[i])`` with np.dot's exact reduction order."""
    return np.matmul(A[:, None, :], B[:, :, None]).reshape(A.shape[0])


def sqeuclidean_rowwise(a, b) -> np.ndarray:
    A, B = _rows64(a, b)
    d = A - B
    return _rowwise_dot(d, d)


def euclidean_rowwise(a, b) -> np.ndarray:
    return np.sqrt(sqeuclidean_rowwise(a, b))


def manhattan_rowwise(a, b) -> np.ndarray:
    A, B = _rows64(a, b)
    return np.abs(A - B).sum(axis=1)


def chebyshev_rowwise(a, b) -> np.ndarray:
    A, B = _rows64(a, b)
    return np.abs(A - B).max(axis=1)


def cosine_rowwise(a, b) -> np.ndarray:
    A, B = _rows64(a, b)
    na = np.sqrt(_rowwise_dot(A, A))
    nb = np.sqrt(_rowwise_dot(B, B))
    ab = _rowwise_dot(A, B)
    zero = (na == 0.0) | (nb == 0.0)
    with np.errstate(invalid="ignore", divide="ignore"):
        sim = ab / (na * nb)
    out = np.maximum(0.0, 1.0 - sim)
    out[zero] = 1.0
    return out


def inner_product_rowwise(a, b) -> np.ndarray:
    A, B = _rows64(a, b)
    return 1.0 - _rowwise_dot(A, B)


def hamming_rowwise(a, b) -> np.ndarray:
    A = np.asarray(a)
    B = np.asarray(b)
    if A.ndim == 1:
        A = np.broadcast_to(A, B.shape)
    elif B.ndim == 1:
        B = np.broadcast_to(B, A.shape)
    return np.count_nonzero(A != B, axis=1) / float(A.shape[1])


# ---------------------------------------------------------------------------
# Pairwise blocks: rows of A vs rows of B (for brute force / ground truth)
# ---------------------------------------------------------------------------


def sqeuclidean_pairwise(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """||a - b||^2 via the expanded form, computed in float64.

    The Gram-matrix trick (``|a|^2 + |b|^2 - 2ab``) is the standard
    vectorization; float64 accumulation keeps it non-negative enough that
    a final clip is safe.
    """
    Af = A.astype(np.float64, copy=False)
    Bf = B.astype(np.float64, copy=False)
    aa = np.einsum("ij,ij->i", Af, Af)[:, None]
    bb = np.einsum("ij,ij->i", Bf, Bf)[None, :]
    out = aa + bb - 2.0 * (Af @ Bf.T)
    np.maximum(out, 0.0, out=out)
    return out


def euclidean_pairwise(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    return np.sqrt(sqeuclidean_pairwise(A, B))


def cosine_pairwise(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    Af = A.astype(np.float64, copy=False)
    Bf = B.astype(np.float64, copy=False)
    na = np.sqrt(np.einsum("ij,ij->i", Af, Af))
    nb = np.sqrt(np.einsum("ij,ij->i", Bf, Bf))
    sims = Af @ Bf.T
    # Zero-norm rows -> similarity 0 -> distance 1.
    na_safe = np.where(na == 0, 1.0, na)
    nb_safe = np.where(nb == 0, 1.0, nb)
    sims /= na_safe[:, None]
    sims /= nb_safe[None, :]
    sims[na == 0, :] = 0.0
    sims[:, nb == 0] = 0.0
    return np.maximum(0.0, 1.0 - sims)


def manhattan_pairwise(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    Af = A.astype(np.float64, copy=False)
    Bf = B.astype(np.float64, copy=False)
    return np.abs(Af[:, None, :] - Bf[None, :, :]).sum(axis=2)


def chebyshev_pairwise(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    Af = A.astype(np.float64, copy=False)
    Bf = B.astype(np.float64, copy=False)
    return np.abs(Af[:, None, :] - Bf[None, :, :]).max(axis=2)


def inner_product_pairwise(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    return 1.0 - A.astype(np.float64, copy=False) @ B.astype(np.float64, copy=False).T


def hamming_pairwise(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    return (A[:, None, :] != B[None, :, :]).sum(axis=2) / float(A.shape[1])
