"""Sparse set-valued metrics (Kosarak-style data, Table 1).

The Kosarak dataset in ANN-Benchmarks is a click-stream: each record is a
*set* of item ids out of ~28k, compared with Jaccard distance.  We
represent a record as a sorted 1-D ``int`` array (the representation
pynndescent uses after CSR conversion) and provide set-algebra metrics on
that representation plus helpers to build it.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..errors import MetricError


def as_sorted_set(items: Sequence[int]) -> np.ndarray:
    """Canonicalize a record to a sorted, duplicate-free int64 array."""
    arr = np.unique(np.asarray(items, dtype=np.int64))
    return arr


def validate_record(rec: np.ndarray) -> np.ndarray:
    rec = np.asarray(rec)
    if rec.ndim != 1:
        raise MetricError(f"sparse record must be 1-D, got ndim={rec.ndim}")
    if rec.size > 1 and np.any(rec[1:] <= rec[:-1]):
        raise MetricError("sparse record must be strictly sorted (use as_sorted_set)")
    return rec


def intersection_size(a: np.ndarray, b: np.ndarray) -> int:
    """|a ∩ b| for two sorted arrays via a linear merge (numpy intersect)."""
    return int(np.intersect1d(a, b, assume_unique=True).size)


def jaccard(a: np.ndarray, b: np.ndarray) -> float:
    """Jaccard distance ``1 - |a∩b| / |a∪b|``; empty-vs-empty is 0."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.size == 0 and b.size == 0:
        return 0.0
    inter = intersection_size(a, b)
    union = int(a.size + b.size - inter)
    return 1.0 - inter / union


def dice(a: np.ndarray, b: np.ndarray) -> float:
    """Sørensen–Dice distance, a common Jaccard companion."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.size == 0 and b.size == 0:
        return 0.0
    inter = intersection_size(a, b)
    return 1.0 - 2.0 * inter / (a.size + b.size)


def overlap(a: np.ndarray, b: np.ndarray) -> float:
    """Overlap (Szymkiewicz–Simpson) distance ``1 - |a∩b|/min(|a|,|b|)``."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.size == 0 or b.size == 0:
        return 0.0 if a.size == b.size else 1.0
    inter = intersection_size(a, b)
    return 1.0 - inter / min(a.size, b.size)


def jaccard_one_to_many(q: np.ndarray, records: List[np.ndarray]) -> np.ndarray:
    """Jaccard distance from ``q`` to each record (loop — records are
    ragged, so there is no rectangular vectorization; the per-record
    merge is already O(|a|+|b|))."""
    return np.array([jaccard(q, r) for r in records], dtype=np.float64)


class SparseDataset:
    """A list of sorted-set records presented with a matrix-like facade.

    NN-Descent code paths index datasets by row (``data[i]``); this class
    lets the same code run over ragged Jaccard data.  ``dim`` reports the
    universe size (number of distinct items), mirroring Table 1's
    "Dimensions" column for Kosarak.
    """

    def __init__(self, records: Sequence[Sequence[int]]) -> None:
        self._records: List[np.ndarray] = [as_sorted_set(r) for r in records]
        self._universe = 0
        for rec in self._records:
            if rec.size:
                self._universe = max(self._universe, int(rec[-1]) + 1)

    def __len__(self) -> int:
        return len(self._records)

    def __getitem__(self, i: int) -> np.ndarray:
        return self._records[int(i)]

    @property
    def shape(self) -> tuple:
        return (len(self._records), self._universe)

    @property
    def dim(self) -> int:
        return self._universe

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(np.int64)

    def nbytes_of(self, i: int) -> int:
        """Wire size of record ``i`` (ragged, unlike dense vectors)."""
        return int(self._records[int(i)].nbytes)

    def mean_record_size(self) -> float:
        if not self._records:
            return 0.0
        return float(np.mean([r.size for r in self._records]))
