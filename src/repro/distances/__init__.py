"""Distance metric library (S1).

NN-Descent's defining property (Section 3.1) is that it works with *any*
symmetric distance function; the paper's evaluation uses L2, cosine, and
Jaccard (Table 1).  This subpackage provides:

- scalar metrics (``theta(a, b) -> float``) for the message-level
  distributed code path,
- batched metrics (``theta_batch(A, b)`` / pairwise blocks) for the
  vectorized shared-memory baseline and brute-force ground truth,
- a registry keyed by metric name,
- blocked tiled-GEMM kernels behind an ``xp`` array-module seam
  (``repro.distances.blocked``), selected per build via
  ``DNNDConfig.kernel`` / ``REPRO_KERNEL``,
- a counting wrapper used to compare construction cost between algorithms
  in distance evaluations (platform-independent work units).
"""

from .registry import (
    Metric,
    get_metric,
    list_metrics,
    register_metric,
)
from .blocked import (
    ArrayModule,
    KernelBundle,
    NormCache,
    blocked_metrics,
    make_kernels,
    resolve_array_module,
    resolve_kernel,
    tile_size_for,
)
from .counting import CountingMetric
from . import blocked, dense, sparse

__all__ = [
    "Metric",
    "get_metric",
    "list_metrics",
    "register_metric",
    "CountingMetric",
    "ArrayModule",
    "KernelBundle",
    "NormCache",
    "blocked_metrics",
    "make_kernels",
    "resolve_array_module",
    "resolve_kernel",
    "tile_size_for",
    "blocked",
    "dense",
    "sparse",
]
