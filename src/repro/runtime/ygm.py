"""YGM-style asynchronous RPC layer (Section 4.1).

YGM's programming model is *fire-and-forget remote procedure calls*: a
sender names a destination rank, a function, and arguments; the function
runs at the destination at some later time; nobody is notified of
completion; a global ``barrier()`` waits until all messages (including
those generated while processing messages) are done.  YGM buffers
messages per destination and ships a buffer when it exceeds a threshold.

:class:`YGMWorld` reproduces those semantics on the simulated cluster:

- ``async_call(src, dest, handler, *args)`` buffers an RPC and records
  it in the per-type message statistics (the Figure 4 measurement),
- buffers auto-flush at ``flush_threshold`` messages or
  ``flush_threshold_bytes`` modeled bytes per destination (real YGM
  caps by bytes), charging the sender one latency ``alpha`` per flush
  plus ``beta`` per byte — batching behaviour has a visible cost
  signature,
- ``barrier()`` flushes everything and drains mailboxes to quiescence,
  running handlers on their destination ranks (which may send more),
  then folds per-rank clocks into the BSP makespan,
- ``async_count_since_barrier`` supports the paper's Section 4.4
  application-level batching (barrier every N global requests).

Handlers receive a :class:`RankContext` giving them their rank id, a
rank-local state namespace, a per-rank RNG, and the ability to send
further async calls and charge modeled compute time.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

import numpy as np

from ..errors import RuntimeStateError
from ..utils.rng import derive_rng
from .instrumentation import MessageStats
from .simmpi import SimCluster

Handler = Callable[..., None]


class RankContext:
    """What a handler sees as "this MPI rank".

    Attributes
    ----------
    rank:
        This rank's id in ``[0, world_size)``.
    state:
        Rank-local storage: the application hangs its shard here (the
        vertex features and neighbor lists this rank owns).
    rng:
        A per-rank deterministic generator.
    """

    def __init__(self, world: "YGMWorld", rank: int, seed: int) -> None:
        self.world = world
        self.rank = int(rank)
        self.state: Dict[str, Any] = {}
        self.rng: np.random.Generator = derive_rng(seed, rank)

    @property
    def world_size(self) -> int:
        return self.world.world_size

    def async_call(self, dest: int, handler: str, *args: Any,
                   nbytes: int = 0, msg_type: str = "other") -> None:
        """Fire-and-forget RPC to ``dest`` (may be this rank)."""
        self.world.async_call(self.rank, dest, handler, *args,
                              nbytes=nbytes, msg_type=msg_type)

    def charge_compute(self, seconds: float) -> None:
        """Charge modeled compute time to this rank's clock."""
        self.world.cluster.ledger.charge(self.rank, seconds)

    def charge_distance(self, dim: int, count: int = 1) -> None:
        """Charge ``count`` distance evaluations of dimension ``dim``."""
        net = self.world.cluster.net
        self.charge_compute(net.distance_cost(dim) * count)

    def charge_update(self, count: int = 1) -> None:
        """Charge ``count`` neighbor-heap update attempts."""
        net = self.world.cluster.net
        self.charge_compute(net.compute_per_update * count)


class YGMWorld:
    """The simulated YGM communicator.

    Parameters
    ----------
    cluster:
        Underlying simulated MPI cluster.
    flush_threshold:
        Messages buffered per destination before an automatic flush —
        models YGM's internal buffer (Section 4.4: "YGM buffers messages
        internally ... automatically sends messages when its internal
        buffer exceeds a certain threshold").
    seed:
        Root seed for per-rank RNGs.
    """

    def __init__(self, cluster: SimCluster, flush_threshold: int = 1024,
                 flush_threshold_bytes: int = 1 << 20,
                 seed: int = 0) -> None:
        if flush_threshold < 1:
            raise RuntimeStateError("flush_threshold must be >= 1")
        if flush_threshold_bytes < 1:
            raise RuntimeStateError("flush_threshold_bytes must be >= 1")
        self.cluster = cluster
        self.world_size = cluster.world_size
        self.flush_threshold = int(flush_threshold)
        self.flush_threshold_bytes = int(flush_threshold_bytes)
        self._handlers: Dict[str, Handler] = {}
        # _buffers[src][dest] -> list of (handler_name, args)
        self._buffers: List[List[List[Tuple[str, tuple]]]] = [
            [[] for _ in range(self.world_size)] for _ in range(self.world_size)
        ]
        self._buffer_bytes: List[List[int]] = [
            [0] * self.world_size for _ in range(self.world_size)
        ]
        self.ranks: List[RankContext] = [
            RankContext(self, r, seed) for r in range(self.world_size)
        ]
        self.async_count_since_barrier = 0
        self.flush_count = 0
        self.handler_invocations = 0
        self._in_barrier = False
        self._phase = "default"
        self.phase_stats: Dict[str, MessageStats] = {}

    # -- handler registry -----------------------------------------------------

    def register_handler(self, name: str, fn: Handler) -> None:
        """Register ``fn`` to run as ``name``; the first positional
        argument passed to ``fn`` is the destination :class:`RankContext`."""
        if name in self._handlers:
            raise RuntimeStateError(f"handler {name!r} already registered")
        self._handlers[name] = fn

    def register_handlers(self, **handlers: Handler) -> None:
        for name, fn in handlers.items():
            self.register_handler(name, fn)

    # -- phases (stats scoping) -------------------------------------------------

    def set_phase(self, phase: str) -> None:
        """Name the current phase; message stats are also recorded per phase."""
        self._phase = phase
        self.phase_stats.setdefault(phase, MessageStats())

    @property
    def stats(self) -> MessageStats:
        return self.cluster.stats

    def stats_for(self, phase: str) -> MessageStats:
        return self.phase_stats.get(phase, MessageStats())

    # -- sending ------------------------------------------------------------

    def async_call(self, src: int, dest: int, handler: str, *args: Any,
                   nbytes: int = 0, msg_type: str = "other") -> None:
        if handler not in self._handlers:
            raise RuntimeStateError(f"unknown handler {handler!r}")
        if not 0 <= dest < self.world_size:
            raise RuntimeStateError(f"destination rank {dest} out of range")
        self.async_count_since_barrier += 1
        if src != dest:
            offnode = self.cluster.is_offnode(src, dest)
            self.cluster.stats.record(msg_type, nbytes, offnode)
            self.phase_stats.setdefault(self._phase, MessageStats()).record(
                msg_type, nbytes, offnode
            )
            self._buffers[src][dest].append((handler, args))
            self._buffer_bytes[src][dest] += nbytes
            # Real YGM caps its buffers by *bytes* (a feature-vector
            # message fills a buffer far faster than a Type 3 reply);
            # the message-count cap is the secondary guard.
            if (len(self._buffers[src][dest]) >= self.flush_threshold
                    or self._buffer_bytes[src][dest] >= self.flush_threshold_bytes):
                self._flush(src, dest)
        else:
            # Local async call: no wire traffic, but still deferred
            # delivery (YGM runs even self-messages from the queue).
            self.cluster.deliver(src, dest, (handler, args))

    def _flush(self, src: int, dest: int) -> None:
        buf = self._buffers[src][dest]
        if not buf:
            return
        offnode = self.cluster.is_offnode(src, dest)
        nbytes = self._buffer_bytes[src][dest]
        net = self.cluster.net
        self.cluster.ledger.charge(
            src, net.flush_cost(offnode) + net.message_cost(nbytes, offnode)
        )
        self.flush_count += 1
        for item in buf:
            self.cluster.deliver(src, dest, item)
        self._buffers[src][dest] = []
        self._buffer_bytes[src][dest] = 0

    def flush_all(self) -> None:
        for src in range(self.world_size):
            for dest in range(self.world_size):
                self._flush(src, dest)

    # -- draining / barrier ----------------------------------------------------

    def _process_round(self) -> int:
        """Deliver every currently-queued message once, in deterministic
        rank order; returns how many handlers ran."""
        ran = 0
        for rank in range(self.world_size):
            # Snapshot the queue length so messages enqueued by handlers
            # in this round are processed in a later round (fair order).
            pending = len(self.cluster._mailboxes[rank])
            for _ in range(pending):
                item = self.cluster.drain_one(rank)
                if item is None:
                    break
                _src, (handler, args) = item
                self._handlers[handler](self.ranks[rank], *args)
                self.handler_invocations += 1
                ran += 1
        return ran

    def barrier(self, phase: str | None = None) -> float:
        """Flush everything and run handlers until global quiescence, then
        synchronize simulated clocks.  Returns superstep duration in
        simulated seconds."""
        if self._in_barrier:
            raise RuntimeStateError("nested barrier (handler called barrier)")
        self._in_barrier = True
        try:
            while True:
                self.flush_all()
                if self._process_round() == 0 and self.cluster.all_quiescent():
                    # A handler may have refilled buffers; loop until both
                    # buffers and mailboxes are empty.
                    if not self._has_buffered():
                        break
            self.async_count_since_barrier = 0
            return self.cluster.ledger.barrier(self.cluster.net, phase or self._phase)
        finally:
            self._in_barrier = False

    def _has_buffered(self) -> bool:
        return any(
            self._buffers[s][d]
            for s in range(self.world_size)
            for d in range(self.world_size)
        )

    # -- SPMD driver helpers ------------------------------------------------------

    def run_on_all(self, fn: Callable[[RankContext], None]) -> None:
        """Run ``fn`` once per rank (the SPMD program section between
        barriers)."""
        for ctx in self.ranks:
            fn(ctx)

    def allreduce_sum(self, value_fn: Callable[[RankContext], float]) -> float:
        """Sum-allreduce of a per-rank value (used for the Algorithm 1
        line 23 termination counter)."""
        return self.cluster.allreduce_sum([value_fn(ctx) for ctx in self.ranks])

    @property
    def elapsed_sim_seconds(self) -> float:
        return self.cluster.ledger.elapsed
