"""YGM-style asynchronous RPC layer (Section 4.1).

YGM's programming model is *fire-and-forget remote procedure calls*: a
sender names a destination rank, a function, and arguments; the function
runs at the destination at some later time; nobody is notified of
completion; a global ``barrier()`` waits until all messages (including
those generated while processing messages) are done.  YGM buffers
messages per destination and ships a buffer when it exceeds a threshold.

:class:`YGMWorld` reproduces those semantics on the simulated cluster:

- ``async_call(src, dest, handler, *args)`` buffers an RPC and records
  it in the per-type message statistics (the Figure 4 measurement),
- buffers auto-flush at ``flush_threshold`` messages or
  ``flush_threshold_bytes`` modeled bytes per destination (real YGM
  caps by bytes), charging the sender one latency ``alpha`` per flush
  plus ``beta`` per byte — batching behaviour has a visible cost
  signature,
- ``barrier()`` flushes everything and drains mailboxes to quiescence,
  running handlers on their destination ranks (which may send more),
  then folds per-rank clocks into the BSP makespan,
- ``async_count_since_barrier`` supports the paper's Section 4.4
  application-level batching (barrier every N global requests).

Handlers receive a :class:`RankContext` giving them their rank id, a
rank-local state namespace, a per-rank RNG, and the ability to send
further async calls and charge modeled compute time.

**Reliable delivery mode.**  With a fault injector attached to the
cluster (:mod:`.faults`) the network may drop, duplicate, delay, or
reorder traffic.  ``reliable=True`` attaches the transport-level
recovery layer (:class:`~repro.runtime.transports.base.ReliableDelivery`
— backend-agnostic: it works identically over :class:`SimCluster` and
:class:`LocalTransport`) so handler effects stay *effectively-once*:

- every remote wire item is framed with a per-``(src, dest)`` sequence
  number (the sim backend frames individual calls; the parallel backend
  frames whole flush envelopes as single reliable units),
- receivers acknowledge sequence numbers positively; acks are batched
  per peer and piggybacked at the end of each delivery round,
- unacknowledged messages are retransmitted after a timeout (measured
  in barrier delivery rounds) with exponential backoff and a bounded
  retry budget — exhausting the budget raises
  :class:`~repro.errors.FaultToleranceError` rather than silently
  corrupting the build,
- receivers remember delivered sequence numbers and suppress duplicate
  handler invocations (retransmits and injected duplicates alike).

**Failure detection.**  Every barrier surfaces
:class:`~repro.errors.RankFailureError` uniformly from any transport
when a rank is known dead (injector crash set or supervisor mark), and —
with ``failure_timeout`` configured in reliable mode — when the
heartbeat detector sees a rank with an overdue unacked frame that has
made no delivery progress for that many rounds.  Detections are counted
in ``fault_stats.detected``; the DNND supervisor decides whether to
recover, exclude (degraded mode via :meth:`YGMWorld.exclude_ranks`), or
abort.

Every message additionally carries a *global send sequence* number (one
counter per world, stamped at ``async_call`` time, exposed to handlers
as ``world.current_message_seq``), which lets order-sensitive consumers
such as :class:`~repro.runtime.containers.DistributedMap` apply
same-key writes in send order even when flush order or injected
reordering scrambles delivery order.

All fault-recovery work is accounted: retransmits and acks appear in
:class:`MessageStats` (message types ``"retransmit"`` / ``"ack"``) and
in the shared :class:`~repro.runtime.instrumentation.FaultStats`, so
ablations can report the overhead of reliability.  When no injector is
attached and ``reliable=False`` (the default), none of this machinery
runs and message accounting is byte-for-byte what it always was.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Tuple

import numpy as np

from ..analysis.race import RaceSanitizer, race_requested
from ..analysis.sanitizer import OwnedState, Sanitizer, sanitizer_requested
from ..errors import RankFailureError, RuntimeStateError
from ..utils.rng import derive_rng
from .instrumentation import FaultStats, MessageStats
from .metrics import NULL_METRICS, MetricsRegistry
from .transports.base import Transport

Handler = Callable[..., None]

# Mailbox payload tags.  Transports are payload-agnostic; these are the
# YGM layer's wire formats.  The reliability frames ("rel"/"ack") are
# owned by the transport layer (transports.base) and wrap any of the
# other items as their inner payload.
_CALL = "call"        # ("call", send_seq, handler, args)
_REL = "rel"          # ("rel", rel_seq, inner_payload)
_ACK = "ack"          # ("ack", (rel_seq, ...))
_BATCH = "bflush"     # ("bflush", [(handler, args, send_seq, nbytes), ...])
# Parallel-executor wire formats: flushes ship one handler-homogeneous
# envelope per batch handler (bare args lists — no per-message tuples)
# plus at most one scalar envelope preserving send order and stamps.
_HBATCH = "hflush"    # ("hflush", handler, [args, ...])
_SBATCH = "sflush"    # ("sflush", [(handler, args, send_seq), ...])


class RankContext:
    """What a handler sees as "this MPI rank".

    Attributes
    ----------
    rank:
        This rank's id in ``[0, world_size)``.
    state:
        Rank-local storage: the application hangs its shard here (the
        vertex features and neighbor lists this rank owns).
    rng:
        A per-rank deterministic generator.
    """

    def __init__(self, world: "YGMWorld", rank: int, seed: int) -> None:
        self.world = world
        self.rank = int(rank)
        # Sanitizing worlds tag the namespace with its owner so handler
        # code reaching into another rank's state raises; otherwise a
        # plain dict keeps the hot path untouched.
        self.state: Dict[str, Any] = (
            OwnedState(world.sanitizer, rank) if world.sanitizer is not None
            else {})
        self.rng: np.random.Generator = derive_rng(seed, rank)

    @property
    def world_size(self) -> int:
        return self.world.world_size

    def async_call(self, dest: int, handler: str, *args: Any,
                   nbytes: int = 0, msg_type: str = "other") -> None:
        """Fire-and-forget RPC to ``dest`` (may be this rank)."""
        self.world.async_call(self.rank, dest, handler, *args,
                              nbytes=nbytes, msg_type=msg_type)

    def async_call_block(self, msgs, msg_type: str = "other") -> None:
        """Emit a prepared block of RPCs — see
        :meth:`YGMWorld.async_call_block`."""
        self.world.async_call_block(self.rank, msgs, msg_type=msg_type)

    def charge_compute(self, seconds: float) -> None:
        """Charge modeled compute time to this rank's clock."""
        self.world.cluster.ledger.charge(self.rank, seconds)

    def charge_distance(self, dim: int, count: int = 1) -> None:
        """Charge ``count`` distance evaluations of dimension ``dim``."""
        net = self.world.cluster.net
        self.charge_compute(net.distance_cost(dim) * count)

    def charge_update(self, count: int = 1) -> None:
        """Charge ``count`` neighbor-heap update attempts."""
        net = self.world.cluster.net
        self.charge_compute(net.compute_per_update * count)


class YGMWorld:
    """The simulated YGM communicator.

    Parameters
    ----------
    cluster:
        Underlying simulated MPI cluster.
    flush_threshold:
        Messages buffered per destination before an automatic flush —
        models YGM's internal buffer (Section 4.4: "YGM buffers messages
        internally ... automatically sends messages when its internal
        buffer exceeds a certain threshold").
    seed:
        Root seed for per-rank RNGs.
    reliable:
        Turn on acked, deduplicated, retransmitting delivery (see the
        module docstring).  Without a fault injector this only adds ack
        traffic; with one it masks drop/duplicate/delay/reorder faults.
    retry_timeout:
        Delivery rounds an unacked message waits before its first
        retransmit; doubles per attempt (``retry_backoff``) up to a cap.
    max_retries:
        Retransmit budget per message; exceeding it raises
        :class:`~repro.errors.FaultToleranceError`.
    failure_timeout:
        Delivery rounds without progress after which a rank with an
        overdue unacked frame is declared failed
        (:class:`~repro.errors.RankFailureError`).  ``None`` (default)
        disables the heartbeat detector; it needs ``reliable=True`` for
        the ack signal.
    executor:
        Scheduling policy for per-rank sections (duck-typed — see
        :mod:`repro.core.executor`).  ``None`` or a non-parallel
        executor keeps the historical inline deterministic behaviour
        byte-for-byte.  A parallel executor switches the comm layer to
        per-rank send-sequence counters and statistics sinks (merged at
        each barrier) and drains rank mailboxes concurrently.  Reliable
        delivery and fault injection work on both: the parallel backend
        frames flush envelopes as single reliable units and serializes
        injector decisions through the transport's fault lock.
    """

    def __init__(self, cluster: Transport, flush_threshold: int = 1024,
                 flush_threshold_bytes: int = 1 << 20,
                 seed: int = 0, reliable: bool = False,
                 retry_timeout: int = 4, retry_backoff: float = 2.0,
                 max_retries: int = 32,
                 failure_timeout: int | None = None,
                 sanitize: bool | None = None,
                 race: "bool | RaceSanitizer | None" = None,
                 executor: Any | None = None,
                 metrics: MetricsRegistry | None = None) -> None:
        if flush_threshold < 1:
            raise RuntimeStateError("flush_threshold must be >= 1")
        if flush_threshold_bytes < 1:
            raise RuntimeStateError("flush_threshold_bytes must be >= 1")
        if retry_timeout < 1:
            raise RuntimeStateError("retry_timeout must be >= 1")
        if max_retries < 1:
            raise RuntimeStateError("max_retries must be >= 1")
        if failure_timeout is not None and failure_timeout < 1:
            raise RuntimeStateError("failure_timeout must be >= 1")
        # Ownership sanitizer (repro.analysis): None when off, so every
        # runtime guard is a single attribute test.
        if sanitize is None:
            sanitize = sanitizer_requested()
        self.sanitizer: Sanitizer | None = Sanitizer() if sanitize else None
        # Race sanitizer (REPRO_SANITIZE=race): barrier-epoch + lockset
        # conflict detection over the transport's mailboxes, the
        # executor's dispatch boundaries, and the metrics registry's
        # publication cells.  Attached only when requested, so the off
        # mode leaves every instrumented object carrying its class-level
        # ``race = None`` and nothing else changes.
        self.race: RaceSanitizer | None = None
        if race is None:
            race = race_requested()
        if race is True:
            race = RaceSanitizer()
        if isinstance(race, RaceSanitizer):
            self.race = race
            cluster.attach_race(race)
            if executor is not None:
                executor.race = race
            if metrics is not None and metrics.enabled:
                metrics.race = race
        # Metrics registry (None -> the shared no-op singleton).  The
        # world only *publishes* into it — at barrier granularity, never
        # per message — so metrics-on costs nothing on the hot path.
        self.metrics: MetricsRegistry = (
            metrics if metrics is not None else NULL_METRICS)
        self.cluster = cluster
        self.world_size = cluster.world_size
        self.flush_threshold = int(flush_threshold)
        self.flush_threshold_bytes = int(flush_threshold_bytes)
        self._handlers: Dict[str, Handler] = {}
        # Batch variants: name -> fn(ctx, args_list).  The delivery loop
        # coalesces contiguous same-handler runs into one invocation when
        # a batch variant exists; absent variants change nothing.
        self._batch_handlers: Dict[str, Handler] = {}
        # is_offnode is pure topology; precompute it so the per-message
        # hot path does two list indexings instead of a method call.
        self._offnode: List[List[bool]] = [
            [cluster.is_offnode(s, d) for d in range(self.world_size)]
            for s in range(self.world_size)
        ]
        # _buffers[src][dest] -> list of (handler_name, args, send_seq, nbytes)
        self._buffers: List[List[List[Tuple[str, tuple, int, int]]]] = [
            [[] for _ in range(self.world_size)] for _ in range(self.world_size)
        ]
        self._buffer_bytes: List[List[int]] = [
            [0] * self.world_size for _ in range(self.world_size)
        ]
        self.ranks: List[RankContext] = [
            RankContext(self, r, seed) for r in range(self.world_size)
        ]
        self.async_count_since_barrier = 0
        self.flush_count = 0
        self.handler_invocations = 0
        # Self-sends (src == dest) never touch the wire or the message
        # stats; counting them separately is what makes the partition
        # layer's locality measurable: comm.local_deliveries vs
        # comm.remote_deliveries at every barrier.
        self.local_deliveries = 0
        self._in_barrier = False
        self._phase = "default"
        self.phase_stats: Dict[str, MessageStats] = {}
        # Global send sequence: stamped on every async_call, exposed to
        # the running handler as current_message_seq.
        self._send_seq = 0
        self._cms: int | None = None
        # Executor seam.  Non-parallel executors (or None) leave every
        # code path below byte-identical to the historical inline loop.
        self._executor = executor
        self._parallel = bool(executor is not None
                              and getattr(executor, "parallel", False))
        self._tls = threading.local()
        if self._parallel:
            ws = cluster.world_size
            # Per-rank send sequences: rank r stamps cnt * ws + r, so
            # stamps stay globally unique without a shared counter.
            self._rank_send_seq = [0] * ws
            # Per-rank sinks for the shared counters/stats, merged into
            # the aggregate objects at each barrier (driver-side, no
            # handlers in flight -> race-free aggregation).
            self._rank_async = [0] * ws
            self._rank_flush = [0] * ws
            self._rank_handled = [0] * ws
            self._rank_local = [0] * ws
            self._rank_stats = [MessageStats() for _ in range(ws)]
            self._rank_phase_stats: List[Dict[str, MessageStats]] = [
                {} for _ in range(ws)]
            # Parallel send buffers are keyed by handler instead of the
            # sim layer's flat per-pair list: batch-handler messages
            # append bare ``args`` to ``_pbuf[src][dest][handler]`` (no
            # per-message tuple allocation; the flush ships each list as
            # one handler-homogeneous envelope the drain can adopt
            # without scanning), scalar messages keep their sequence
            # stamps in ``_pbuf_scalar``.  ``_pbuf_count`` holds the
            # total queued messages per pair for the flush threshold.
            self._pbuf: List[List[Dict[str, list]]] = [
                [{} for _ in range(ws)] for _ in range(ws)]
            self._pbuf_scalar: List[List[list]] = [
                [[] for _ in range(ws)] for _ in range(ws)]
            self._pbuf_count: List[List[int]] = [
                [0] * ws for _ in range(ws)]
            # Batch-handler args accumulated during the collect phase of
            # a barrier round (handler name -> list of args tuples),
            # executed once per handler in the execute phase.  Persisting
            # them across collect passes is what recovers sim-grade
            # coalescing: one kernel call per handler per round instead
            # of one per momentarily-empty mailbox.
            self._rank_groups: List[Dict[str, list]] = [
                {} for _ in range(ws)]
        # Reliable delivery: the transport-level state machine (shared by
        # both backends — see transports.base.ReliableDelivery).
        self.reliable = bool(reliable)
        self.retry_timeout = int(retry_timeout)
        self.retry_backoff = float(retry_backoff)
        self.max_retries = int(max_retries)
        self._tick = 0
        injector = getattr(cluster, "injector", None)
        self.fault_stats: FaultStats = (
            injector.stats if injector is not None else FaultStats())
        if self.reliable:
            # Control-traffic stats sinks: the shared transport stats
            # under sim (driver thread only), per-rank sinks under the
            # parallel executor (ack flushes run on rank threads).
            stats_for = ((lambda r: self._rank_stats[r]) if self._parallel
                         else None)
            self._rel = cluster.enable_reliability(
                retry_timeout=self.retry_timeout,
                retry_backoff=self.retry_backoff,
                max_retries=self.max_retries,
                fault_stats=self.fault_stats,
                stats_for=stats_for)
        else:
            self._rel = None
        # Failure detection (heartbeat) and degraded-mode state.
        self.failure_timeout = (None if failure_timeout is None
                                else int(failure_timeout))
        self._last_progress = [0] * self.world_size
        #: Ranks the supervisor has excluded from the build (degraded
        #: mode); SPMD sections skip them until readmit_ranks().
        self.excluded_ranks: set = set()

    @property
    def injector(self):
        return getattr(self.cluster, "injector", None)

    @property
    def current_message_seq(self) -> int | None:
        """Global send-sequence of the message currently being delivered
        (``None`` outside scalar handler delivery).  Thread-local under
        the parallel executor so concurrently-draining ranks never
        observe each other's stamps."""
        if self._parallel:
            return getattr(self._tls, "cms", None)
        return self._cms

    @current_message_seq.setter
    def current_message_seq(self, value: int | None) -> None:
        if self._parallel:
            self._tls.cms = value
        else:
            self._cms = value

    # -- handler registry -----------------------------------------------------

    def register_handler(self, name: str, fn: Handler) -> None:
        """Register ``fn`` to run as ``name``; the first positional
        argument passed to ``fn`` is the destination :class:`RankContext`."""
        if name in self._handlers:
            raise RuntimeStateError(f"handler {name!r} already registered")
        if self.sanitizer is not None:
            # Wrapping at registration keeps the delivery loop identical
            # whether or not the sanitizer is on.
            fn = self.sanitizer.wrap_handler(name, fn)
        self._handlers[name] = fn

    def register_handlers(self, **handlers: Handler) -> None:
        for name, fn in handlers.items():
            self.register_handler(name, fn)

    def register_batch_handler(self, name: str, fn: Handler) -> None:
        """Register a batch variant for an already-registered handler.

        ``fn(ctx, args_list)`` receives the destination context and the
        list of argument tuples of a contiguous run of ``name`` messages,
        and must be *semantically identical* to invoking the scalar
        handler once per tuple, in order (the batch execution engine's
        bit-identity contract).
        """
        if name not in self._handlers:
            raise RuntimeStateError(
                f"batch handler {name!r} has no scalar registration")
        if name in self._batch_handlers:
            raise RuntimeStateError(f"batch handler {name!r} already registered")
        if self.sanitizer is not None:
            fn = self.sanitizer.wrap_handler(name, fn)
        self._batch_handlers[name] = fn

    def register_batch_handlers(self, **handlers: Handler) -> None:
        for name, fn in handlers.items():
            self.register_batch_handler(name, fn)

    # -- phases (stats scoping) -------------------------------------------------

    def set_phase(self, phase: str) -> None:
        """Name the current phase; message stats are also recorded per phase."""
        self._phase = phase
        self.phase_stats.setdefault(phase, MessageStats())

    @property
    def stats(self) -> MessageStats:
        return self.cluster.stats

    def stats_for(self, phase: str) -> MessageStats:
        return self.phase_stats.get(phase, MessageStats())

    @property
    def local_delivery_count(self) -> int:
        """Total self-sends (src == dest) so far.  Under the parallel
        executor the per-rank sinks are summed — read at barrier
        granularity (publish/export time), when no handler is in
        flight."""
        if self._parallel:
            return self.local_deliveries + sum(self._rank_local)
        return self.local_deliveries

    # -- metrics ----------------------------------------------------------------

    def publish_metrics(self) -> None:
        """Mirror the runtime's authoritative aggregates into the metrics
        registry.

        Called automatically at the end of every barrier (after the
        parallel backend's per-rank sink merge, so no handler is in
        flight).  All values are *assigned* as absolute totals —
        re-publishing is idempotent, and both backends emit the exact
        same metric names (the cross-backend conformance contract).
        """
        m = self.metrics
        if not m.enabled:
            return
        self.cluster.stats.publish(m)
        if self.injector is not None:
            self.injector.publish(m)
        else:
            self.fault_stats.publish(m)
        m.set_counter("executor.tasks", self.handler_invocations)
        m.set_counter("comm.flushes", self.flush_count)
        m.set_counter("comm.barriers", self.cluster.ledger.barriers)
        m.set_counter("transport.collectives",
                      getattr(self.cluster, "collectives", 0))
        dispatches = getattr(self._executor, "dispatches", None)
        m.set_counter("executor.dispatches",
                      dispatches if dispatches is not None else 0)
        # Locality split: self-sends vs wire messages.  Published on
        # every backend (the process world mirrors the same names), so
        # the partition layer's effect is directly comparable.
        m.set_counter("comm.local_deliveries", self.local_delivery_count)
        m.set_counter("comm.remote_deliveries",
                      self.cluster.stats.total_count())
        # Degraded-mode visibility: how many ranks are currently
        # excluded from the build (0 outside degraded mode — published
        # unconditionally so both backends emit the same names).
        m.set_gauge("degraded.ranks", float(len(self.excluded_ranks)))

    # -- sending ------------------------------------------------------------

    def async_call(self, src: int, dest: int, handler: str, *args: Any,
                   nbytes: int = 0, msg_type: str = "other") -> None:
        if handler not in self._handlers:
            raise RuntimeStateError(f"unknown handler {handler!r}")
        if not 0 <= dest < self.world_size:
            raise RuntimeStateError(f"destination rank {dest} out of range")
        if self._parallel:
            self._async_call_parallel(src, dest, handler, args, nbytes,
                                      msg_type)
            return
        self.async_count_since_barrier += 1
        seq = self._send_seq
        self._send_seq += 1
        if src != dest:
            offnode = self._offnode[src][dest]
            self.cluster.stats.record(msg_type, nbytes, offnode)
            self.phase_stats.setdefault(self._phase, MessageStats()).record(
                msg_type, nbytes, offnode
            )
            self._buffers[src][dest].append((handler, args, seq, nbytes))
            self._buffer_bytes[src][dest] += nbytes
            # Real YGM caps its buffers by *bytes* (a feature-vector
            # message fills a buffer far faster than a Type 3 reply);
            # the message-count cap is the secondary guard.
            if (len(self._buffers[src][dest]) >= self.flush_threshold
                    or self._buffer_bytes[src][dest] >= self.flush_threshold_bytes):
                self._flush(src, dest)
        else:
            # Local async call: no wire traffic, but still deferred
            # delivery (YGM runs even self-messages from the queue).
            self.local_deliveries += 1
            self.cluster.deliver(src, dest, (_CALL, seq, handler, args))

    def _async_call_parallel(self, src: int, dest: int, handler: str,
                             args: tuple, nbytes: int,
                             msg_type: str) -> None:
        """Parallel-executor variant of :meth:`async_call`: touches only
        rank ``src``'s send-side state (sequence counter, buffers, stats
        sink), so concurrent sections never contend."""
        self._rank_async[src] += 1
        # Wire tuples under the parallel executor carry the *per-rank*
        # counter; delivery globalizes it to ``cnt * world_size + src``
        # (the sender rank travels with the envelope), saving a multiply
        # per message on the send side.
        seq = self._rank_send_seq[src]
        self._rank_send_seq[src] = seq + 1
        if src != dest:
            offnode = self._offnode[src][dest]
            self._rank_stats[src].record(msg_type, nbytes, offnode)
            self._rank_phase_stats[src].setdefault(
                self._phase, MessageStats()).record(msg_type, nbytes, offnode)
            if handler in self._batch_handlers:
                pb = self._pbuf[src][dest]
                lst = pb.get(handler)
                if lst is None:
                    lst = pb[handler] = []
                lst.append(args)
            else:
                self._pbuf_scalar[src][dest].append((handler, args, seq))
            cnt = self._pbuf_count[src][dest] + 1
            self._pbuf_count[src][dest] = cnt
            nb = self._buffer_bytes[src][dest] + nbytes
            self._buffer_bytes[src][dest] = nb
            if cnt >= self.flush_threshold or nb >= self.flush_threshold_bytes:
                self._flush_parallel(src, dest)
        else:
            self._rank_local[src] += 1
            self.cluster.deliver(src, dest, (_CALL, seq, handler, args))

    def block_emitter(self, src: int, msg_type: str = "other"):
        """Low-overhead emitter for a block of same-type RPCs from ``src``.

        Returns ``(send, close)``.  ``send(dest, handler, args, nbytes)``
        is semantically one :meth:`async_call`; ``close()`` must be
        called after the last send.  Exactness contract with the scalar
        path:

        - every message gets the same global send-sequence stamp it
          would have gotten from :meth:`async_call` (a local counter,
          written back at close — nothing reads ``_send_seq`` mid-block
          because handlers only run inside :meth:`barrier`),
        - buffer appends and flush triggers happen per message, in
          message order, so mid-block flush charges land on the ledger
          at exactly the same points as in a scalar emission loop,
        - message statistics are integer counters, hence order-free;
          they are aggregated locally and recorded once at close via
          :meth:`MessageStats.record_many`.

        Only one emitter may be active at a time (flushes triggered by
        ``send`` enqueue to mailboxes without running handlers, so there
        is no reentrancy).  A validation error raised by ``send`` aborts
        the block with stats unrecorded — acceptable, since it signals a
        programming error that aborts the run.
        """
        if self._parallel:
            return self._block_emitter_parallel(src, msg_type)
        world = self
        handlers = self._handlers
        buffers_src = self._buffers[src]
        buffer_bytes_src = self._buffer_bytes[src]
        offrow = self._offnode[src]
        deliver = self.cluster.deliver
        ft = self.flush_threshold
        ftb = self.flush_threshold_bytes
        ws = self.world_size
        start_seq = self._send_seq
        next_seq = start_seq
        on_c = on_b = off_c = off_b = 0
        checked_handler = None

        def send(dest: int, handler: str, args: tuple, nbytes: int) -> None:
            nonlocal next_seq, on_c, on_b, off_c, off_b, checked_handler
            if handler is not checked_handler:
                if handler not in handlers:
                    raise RuntimeStateError(f"unknown handler {handler!r}")
                checked_handler = handler
            if not 0 <= dest < ws:
                raise RuntimeStateError(f"destination rank {dest} out of range")
            seq = next_seq
            next_seq = seq + 1
            if src != dest:
                if offrow[dest]:
                    off_c += 1
                    off_b += nbytes
                else:
                    on_c += 1
                    on_b += nbytes
                buf = buffers_src[dest]
                buf.append((handler, args, seq, nbytes))
                nb = buffer_bytes_src[dest] + nbytes
                buffer_bytes_src[dest] = nb
                if len(buf) >= ft or nb >= ftb:
                    world._flush(src, dest)
            else:
                deliver(src, dest, (_CALL, seq, handler, args))

        def close() -> None:
            world._send_seq = next_seq
            world.async_count_since_barrier += next_seq - start_seq
            total_c = on_c + off_c
            # Every stamped message that was not on/off-node was a
            # self-send: the local-delivery count falls out for free.
            world.local_deliveries += (next_seq - start_seq) - total_c
            if total_c:
                total_b = on_b + off_b
                world.cluster.stats.record_many(
                    msg_type, total_c, total_b, off_c, off_b)
                world.phase_stats.setdefault(
                    world._phase, MessageStats()).record_many(
                        msg_type, total_c, total_b, off_c, off_b)

        return send, close

    def _block_emitter_parallel(self, src: int, msg_type: str):
        """Parallel-executor variant of :meth:`block_emitter`: identical
        contract, but sequence stamps come from rank ``src``'s counter
        (``cnt * world_size + src``) and statistics land in its per-rank
        sink.  Rank-confined throughout, so blocks may run concurrently
        on different ranks."""
        world = self
        handlers = self._handlers
        batch_handlers = self._batch_handlers
        pbuf_src = self._pbuf[src]
        scalar_src = self._pbuf_scalar[src]
        counts_src = self._pbuf_count[src]
        buffer_bytes_src = self._buffer_bytes[src]
        offrow = self._offnode[src]
        deliver = self.cluster.deliver
        ft = self.flush_threshold
        ftb = self.flush_threshold_bytes
        ws = self.world_size
        start_cnt = self._rank_send_seq[src]
        next_cnt = start_cnt
        on_c = on_b = off_c = off_b = 0
        checked_handler = None
        checked_is_batch = False

        def send(dest: int, handler: str, args: tuple, nbytes: int) -> None:
            nonlocal next_cnt, on_c, on_b, off_c, off_b, \
                checked_handler, checked_is_batch
            if handler is not checked_handler:
                if handler not in handlers:
                    raise RuntimeStateError(f"unknown handler {handler!r}")
                checked_handler = handler
                checked_is_batch = handler in batch_handlers
            if not 0 <= dest < ws:
                raise RuntimeStateError(f"destination rank {dest} out of range")
            # Per-rank counter on the wire; delivery globalizes (see
            # _async_call_parallel).
            seq = next_cnt
            next_cnt += 1
            if src != dest:
                if offrow[dest]:
                    off_c += 1
                    off_b += nbytes
                else:
                    on_c += 1
                    on_b += nbytes
                if checked_is_batch:
                    pb = pbuf_src[dest]
                    lst = pb.get(handler)
                    if lst is None:
                        lst = pb[handler] = []
                    lst.append(args)
                else:
                    scalar_src[dest].append((handler, args, seq))
                cnt = counts_src[dest] + 1
                counts_src[dest] = cnt
                nb = buffer_bytes_src[dest] + nbytes
                buffer_bytes_src[dest] = nb
                if cnt >= ft or nb >= ftb:
                    world._flush_parallel(src, dest)
            else:
                deliver(src, dest, (_CALL, seq, handler, args))

        def close() -> None:
            world._rank_send_seq[src] = next_cnt
            world._rank_async[src] += next_cnt - start_cnt
            total_c = on_c + off_c
            world._rank_local[src] += (next_cnt - start_cnt) - total_c
            if total_c:
                total_b = on_b + off_b
                world._rank_stats[src].record_many(
                    msg_type, total_c, total_b, off_c, off_b)
                world._rank_phase_stats[src].setdefault(
                    world._phase, MessageStats()).record_many(
                        msg_type, total_c, total_b, off_c, off_b)

        return send, close

    def async_call_block(self, src: int, msgs,
                         msg_type: str = "other") -> None:
        """Emit a prepared block of RPCs from ``src`` — semantically a
        loop of :meth:`async_call` over ``(dest, handler, args, nbytes)``
        tuples, with per-message overhead amortized."""
        send, close = self.block_emitter(src, msg_type)
        for dest, handler, args, nbytes in msgs:
            send(dest, handler, args, nbytes)
        close()

    def emit_run(self, src: int, triples, nbytes: int,
                 msg_type: str = "other") -> None:
        """Emit a uniform-``nbytes`` run of RPCs from ``src`` —
        semantically a loop of :meth:`async_call` over
        ``(dest, handler, args)`` triples.

        Driver-internal fast path: unlike :meth:`block_emitter` it skips
        per-message handler/destination validation (the caller computes
        destinations from the owner table and handler names are
        literals), and exploits the constant message size to total the
        statistics with one multiply.  Ordering guarantees are identical
        to the emitter: sequence stamps, buffer appends, and
        threshold-triggered flushes happen per message, in order.
        """
        if self._parallel:
            self._emit_run_parallel(src, triples, nbytes, msg_type)
            return
        buffers_src = self._buffers[src]
        buffer_bytes_src = self._buffer_bytes[src]
        offrow = self._offnode[src]
        if self.injector is None:
            # Injector-free local delivery is a plain mailbox append
            # (deliver()'s alive/range checks cannot fire: no crashes
            # without an injector, destinations come from owner tables).
            local_deliver = self.cluster.self_append(src)
        else:
            deliver = self.cluster.deliver
            local_deliver = (lambda item:
                             deliver(src, src, item[1]))
        flush = self._flush
        ft = self.flush_threshold
        ftb = self.flush_threshold_bytes
        start_seq = seq = self._send_seq
        on_c = off_c = 0
        for dest, handler, args in triples:
            if src != dest:
                if offrow[dest]:
                    off_c += 1
                else:
                    on_c += 1
                buf = buffers_src[dest]
                buf.append((handler, args, seq, nbytes))
                nb = buffer_bytes_src[dest] + nbytes
                buffer_bytes_src[dest] = nb
                if len(buf) >= ft or nb >= ftb:
                    flush(src, dest)
            else:
                local_deliver((src, (_CALL, seq, handler, args)))
            seq += 1
        self._send_seq = seq
        self.async_count_since_barrier += seq - start_seq
        total_c = on_c + off_c
        self.local_deliveries += (seq - start_seq) - total_c
        if total_c:
            self.cluster.stats.record_many(
                msg_type, total_c, total_c * nbytes, off_c, off_c * nbytes)
            self.phase_stats.setdefault(
                self._phase, MessageStats()).record_many(
                    msg_type, total_c, total_c * nbytes, off_c, off_c * nbytes)

    def _emit_run_parallel(self, src: int, triples, nbytes: int,
                           msg_type: str) -> None:
        """Parallel-executor variant of :meth:`emit_run` (per-rank
        sequence stamps and stats sink; rank-confined, so runs may be
        emitted concurrently from different ranks)."""
        pbuf_src = self._pbuf[src]
        scalar_src = self._pbuf_scalar[src]
        counts_src = self._pbuf_count[src]
        buffer_bytes_src = self._buffer_bytes[src]
        offrow = self._offnode[src]
        if self.injector is None:
            # Injector-free local delivery is a plain mailbox append
            # (deliver()'s checks cannot fire — mirrors emit_run).
            local_deliver = self.cluster.self_append(src)
        else:
            deliver = self.cluster.deliver
            local_deliver = (lambda item:
                             deliver(src, src, item[1]))
        flush = self._flush_parallel
        ft = self.flush_threshold
        ftb = self.flush_threshold_bytes
        batch_handlers = self._batch_handlers
        start_cnt = cnt = self._rank_send_seq[src]
        on_c = off_c = 0
        last_h = None
        is_batch = False
        # Per-rank counters on the wire; delivery globalizes (see
        # _async_call_parallel).  Runs are near-uniform in handler, so
        # the batch/scalar classification is cached across messages.
        for dest, handler, args in triples:
            if handler is not last_h:
                last_h = handler
                is_batch = handler in batch_handlers
            seq = cnt
            cnt += 1
            if src != dest:
                if offrow[dest]:
                    off_c += 1
                else:
                    on_c += 1
                if is_batch:
                    pb = pbuf_src[dest]
                    lst = pb.get(handler)
                    if lst is None:
                        lst = pb[handler] = []
                    lst.append(args)
                else:
                    scalar_src[dest].append((handler, args, seq))
                c = counts_src[dest] + 1
                counts_src[dest] = c
                nb = buffer_bytes_src[dest] + nbytes
                buffer_bytes_src[dest] = nb
                if c >= ft or nb >= ftb:
                    flush(src, dest)
            else:
                local_deliver((src, (_CALL, seq, handler, args)))
        self._rank_send_seq[src] = cnt
        self._rank_async[src] += cnt - start_cnt
        total_c = on_c + off_c
        self._rank_local[src] += (cnt - start_cnt) - total_c
        if total_c:
            self._rank_stats[src].record_many(
                msg_type, total_c, total_c * nbytes, off_c, off_c * nbytes)
            self._rank_phase_stats[src].setdefault(
                self._phase, MessageStats()).record_many(
                    msg_type, total_c, total_c * nbytes, off_c, off_c * nbytes)

    def _flush_parallel(self, src: int, dest: int) -> None:
        """Flush the parallel executor's handler-keyed buffers for one
        ``(src, dest)`` pair: one handler-homogeneous envelope per batch
        handler (the drain adopts the args list wholesale) plus at most
        one scalar envelope preserving send order and stamps.  The cost
        ledger is sim-only, so no charge here; rank-confined, so drain
        tasks flush their own buffers mid-round.

        Under reliable delivery each envelope is framed as ONE reliable
        unit — a dropped envelope is retransmitted and a duplicated one
        deduplicated wholesale (retransmit byte accounting carries 0:
        the parallel backend has no modeled byte costs)."""
        pb = self._pbuf[src][dest]
        sc = self._pbuf_scalar[src][dest]
        if not pb and not sc:
            return
        self._rank_flush[src] += 1
        rel = self._rel
        deliver = self.cluster.deliver
        if pb:
            for h, lst in pb.items():
                if rel is not None:
                    rel.send(src, dest, (_HBATCH, h, lst), 0)
                else:
                    deliver(src, dest, (_HBATCH, h, lst))
            pb.clear()
        if sc:
            if rel is not None:
                rel.send(src, dest, (_SBATCH, sc), 0)
            else:
                deliver(src, dest, (_SBATCH, sc))
            self._pbuf_scalar[src][dest] = []
        self._pbuf_count[src][dest] = 0
        self._buffer_bytes[src][dest] = 0

    def _flush(self, src: int, dest: int) -> None:
        if self._parallel:
            self._flush_parallel(src, dest)
            return
        buf = self._buffers[src][dest]
        if not buf:
            return
        offnode = self._offnode[src][dest]
        nbytes = self._buffer_bytes[src][dest]
        ledger = self.cluster.ledger
        if ledger.enabled:
            net = self.cluster.net
            ledger.charge(
                src, net.flush_cost(offnode) + net.message_cost(nbytes, offnode)
            )
        self.flush_count += 1
        inj = self.injector
        if self._batch_handlers and inj is None and not self.reliable:
            # Envelope delivery: hand the whole buffer over as ONE
            # mailbox item.  Without an injector, per-message delivery
            # is a plain append per entry, so an envelope preserving
            # entry order is byte-identical in every observable —
            # flushed buffers never interleave with other deliveries.
            # Faulty or reliable runs keep the per-message wire format
            # (drop/duplicate/delay decisions are per message).
            self.cluster.deliver(src, dest, (_BATCH, buf))
            self._buffers[src][dest] = []
            self._buffer_bytes[src][dest] = 0
            return
        if inj is not None:
            stall = inj.maybe_stall()
            if stall:
                self.cluster.ledger.charge(src, stall)
            order = inj.maybe_reorder(len(buf))
            if order is not None:
                buf = [buf[int(i)] for i in order]
        rel = self._rel
        for handler, args, seq, msg_nbytes in buf:
            if rel is not None:
                rel.send(src, dest, (_CALL, seq, handler, args), msg_nbytes)
            else:
                self.cluster.deliver(src, dest, (_CALL, seq, handler, args))
        self._buffers[src][dest] = []
        self._buffer_bytes[src][dest] = 0

    def flush_all(self) -> None:
        for src in range(self.world_size):
            for dest in range(self.world_size):
                self._flush(src, dest)

    # -- draining / barrier ----------------------------------------------------

    def _process_round(self) -> int:
        """Deliver every currently-queued message once, in deterministic
        rank order; returns how many messages were applied.

        When a handler has a registered batch variant, contiguous runs
        of that handler within a rank's snapshot are drained first and
        applied as ONE batch invocation.  This is exact because draining
        a message has no handler-visible effect: reliable-delivery
        bookkeeping (acks, dedup) still happens per message before the
        message joins its run, ``_ACK`` control traffic is bookkeeping
        only (it neither runs a handler nor breaks a run), and the batch
        handler itself is contractually equivalent to the scalar handler
        applied per message in order.  ``current_message_seq`` is None
        during a batch invocation — no batch variants are registered for
        order-sensitive consumers that read it.
        """
        ran = 0
        batch_handlers = self._batch_handlers
        handlers = self._handlers
        rel = self._rel
        for rank in range(self.world_size):
            ctx = self.ranks[rank]
            # Snapshot the queue length so messages enqueued by handlers
            # in this round are processed in a later round (fair order).
            pending = self.cluster.mailbox_len(rank)
            if pending:
                # Heartbeat signal: the rank is draining traffic.
                self._last_progress[rank] = self._tick
            run_handler: str | None = None
            run_args: list = []
            for _ in range(pending):
                item = self.cluster.drain_one(rank)
                if item is None:
                    break
                src, payload = item
                tag = payload[0]
                if tag == _REL:
                    # Reliability frame: ack/dedup at the transport
                    # layer, then fall through with the inner payload.
                    if not rel.on_receive(rank, src, payload[1]):
                        continue
                    payload = payload[2]
                    tag = payload[0]
                elif tag == _ACK:
                    rel.on_ack(rank, src, payload[1])
                    continue
                if tag == _BATCH:
                    # A flushed buffer delivered whole: same entries, in
                    # the same order, as per-message delivery would give.
                    buf = payload[1]
                    # Fast path: an envelope whose entries all carry one
                    # batchable handler joins the current run with a
                    # C-level extend.  Run granularity is immaterial:
                    # rowwise kernels are bitwise row-independent, and
                    # every other effect is applied per message in order.
                    hset = {m[0] for m in buf}
                    if len(hset) == 1:
                        h = buf[0][0]
                        if h in batch_handlers:
                            if run_handler is not None and run_handler != h:
                                ran += self._run_batch(ctx, run_handler, run_args)
                                run_args = []
                            run_handler = h
                            run_args.extend([m[1] for m in buf])
                            continue
                    for handler, args, seq, _nb in buf:
                        if handler in batch_handlers:
                            if run_handler is not None and run_handler != handler:
                                ran += self._run_batch(ctx, run_handler, run_args)
                                run_args = []
                            run_handler = handler
                            run_args.append(args)
                            continue
                        if run_handler is not None:
                            ran += self._run_batch(ctx, run_handler, run_args)
                            run_handler, run_args = None, []
                        self.current_message_seq = seq
                        try:
                            handlers[handler](ctx, *args)
                        finally:
                            self.current_message_seq = None
                        self.handler_invocations += 1
                        ran += 1
                    continue
                _tag, seq, handler, args = payload
                if handler in batch_handlers:
                    if run_handler is not None and run_handler != handler:
                        ran += self._run_batch(ctx, run_handler, run_args)
                        run_args = []
                    run_handler = handler
                    run_args.append(args)
                    continue
                if run_handler is not None:
                    ran += self._run_batch(ctx, run_handler, run_args)
                    run_handler, run_args = None, []
                self.current_message_seq = seq
                try:
                    handlers[handler](ctx, *args)
                finally:
                    self.current_message_seq = None
                self.handler_invocations += 1
                ran += 1
            if run_handler is not None:
                ran += self._run_batch(ctx, run_handler, run_args)
        if rel is not None:
            rel.flush_acks()
        return ran

    def _run_batch(self, ctx: RankContext, handler: str,
                   args_list: list) -> int:
        """Apply a coalesced run of ``handler`` messages at ``ctx``."""
        self._batch_handlers[handler](ctx, args_list)
        n = len(args_list)
        self.handler_invocations += n
        return n

    def _reliable_pending(self) -> bool:
        return self._rel is not None and self._rel.pending()

    def _check_crashed(self) -> None:
        """Uniform failure surfacing: raise
        :class:`~repro.errors.RankFailureError` when the transport knows
        of a dead rank the supervisor has not excluded (injector crash
        set or supervisor mark, on any backend)."""
        cluster = self.cluster
        inj = cluster.injector
        if (inj is None or not inj.crashed) and not cluster.marked_failed:
            return
        failed = cluster.failed_ranks() - self.excluded_ranks
        if failed:
            self.fault_stats.detected += len(failed)
            raise RankFailureError(failed)

    def _check_failure_timeout(self) -> None:
        """Heartbeat detector: a rank holding up an unacked frame for
        ``failure_timeout`` delivery rounds that has also drained
        nothing for that long is declared failed — the transport marks
        it (purging its reliability state so peers stop waiting) and the
        barrier surfaces :class:`~repro.errors.RankFailureError`."""
        ft = self.failure_timeout
        rel = self._rel
        if ft is None or rel is None:
            return
        stuck = rel.overdue_dests(ft)
        if not stuck:
            return
        tick = self._tick
        failed = {r for r in stuck
                  if tick - self._last_progress[r] >= ft
                  and r not in self.excluded_ranks}
        if failed:
            self.cluster.mark_failed(failed)
            self.fault_stats.detected += len(failed)
            raise RankFailureError(failed)

    def barrier(self, phase: str | None = None) -> float:
        """Flush everything and run handlers until global quiescence, then
        synchronize simulated clocks.  Returns superstep duration in
        simulated seconds.

        Raises :class:`~repro.errors.RankFailureError` when a fault
        injector has crashed a rank (a real MPI barrier over a dead rank
        aborts the communicator), and
        :class:`~repro.errors.FaultToleranceError` when reliable mode
        exhausts a message's retry budget.
        """
        if self._parallel:
            return self._barrier_parallel(phase)
        if self._in_barrier:
            raise RuntimeStateError("nested barrier (handler called barrier)")
        self._in_barrier = True
        inj = self.injector
        rel = self._rel
        try:
            while True:
                self._check_crashed()
                self.flush_all()
                ran = self._process_round()
                if ran == 0 and self.cluster.all_quiescent():
                    # A handler may have refilled buffers, a delayed
                    # message may still be parked in the injector, and
                    # reliable mode may be awaiting acks; quiesce only
                    # when every source of future work is empty.
                    if (not self._has_buffered()
                            and not self._reliable_pending()
                            and (inj is None or inj.pending_delayed() == 0)):
                        break
                # Advance simulated delivery time: release due delayed
                # messages and retransmit overdue unacked ones.
                self._tick += 1
                self.cluster.release_due_faults()
                if rel is not None:
                    rel.tick()
                self._check_failure_timeout()
            if rel is not None:
                rel.sync_fault_stats()
            self.async_count_since_barrier = 0
            duration = self.cluster.ledger.barrier(
                self.cluster.net, phase or self._phase)
            if self.metrics.enabled:
                self.publish_metrics()
            return duration
        finally:
            self._in_barrier = False

    def _barrier_parallel(self, phase: str | None) -> float:
        """Barrier under the parallel executor: one leading driver-side
        ``flush_all`` (for messages the *driver thread* emitted — no
        handlers are in flight, so send-side state is safe to touch),
        then repeated concurrent drain rounds until global quiescence.
        Each per-rank drain task loops until its own mailbox is empty
        and flushes its own send buffers (rank-confined state, so
        in-task flushing is race-free), which lets handler chains make
        many hops per dispatch round.  Per-rank stats sinks are merged
        *before* the ledger barrier returns, so a tracer reading
        aggregates at the barrier never races a worker."""
        if self._in_barrier:
            raise RuntimeStateError("nested barrier (handler called barrier)")
        self._in_barrier = True
        try:
            executor = self._executor
            collect = self._drain_rank
            execute = self._execute_groups_rank
            ws = self.world_size
            cluster = self.cluster
            rel = self._rel
            inj = self.injector
            self.flush_all()
            while True:
                self._check_crashed()
                executor.map_ranks(collect, ws)
                ran = executor.map_ranks(execute, ws)
                # All tasks have joined, so every in-flight message is
                # sitting in a mailbox, a send buffer, a group, the
                # injector's delay queue, or the reliability layer's
                # unacked window.  ran == 0 means every group was empty
                # when the execute pass looked (the collect pass found
                # nothing to batch), so empty mailboxes + empty buffers
                # + no pending recovery work IS quiescence.
                if (ran == 0 and cluster.all_quiescent()
                        and not self._has_buffered()
                        and (rel is None or not rel.pending())
                        and (inj is None or inj.pending_delayed() == 0)):
                    break
                # Advance delivery time between rounds — driver-only,
                # with no rank section in flight: release due delayed
                # messages, retransmit overdue unacked frames, and run
                # the failure detector.
                self._tick += 1
                cluster.release_due_faults()
                if rel is not None:
                    rel.tick()
                self._check_failure_timeout()
            if rel is not None:
                rel.sync_fault_stats()
            self._merge_rank_sinks()
            self.async_count_since_barrier = 0
            duration = self.cluster.ledger.barrier(
                self.cluster.net, phase or self._phase)
            # Publishing happens after the sink merge, while no handlers
            # are in flight — the registry sees the same race-free
            # aggregates a tracer does.
            if self.metrics.enabled:
                self.publish_metrics()
            return duration
        finally:
            self._in_barrier = False

    def _drain_rank(self, rank: int) -> int:
        """Collect rank ``rank``'s queued messages until its mailbox is
        empty and its send buffers are flushed — the parallel executor's
        per-rank delivery section, run concurrently across ranks inside
        :meth:`_barrier_parallel`.

        A lean :meth:`_process_round` body: ``_HBATCH`` / ``_SBATCH`` /
        ``_CALL`` wire items, optionally framed by the transport
        reliability layer (``_REL`` frames are acked/deduped then
        unwrapped; ``_ACK`` frames retire this rank's unacked sends),
        and every counter goes to a per-rank sink merged at the barrier.
        Everything touched —
        this rank's mailbox, shard, send-side buffers, and group
        accumulator — is owned by ``rank``, so the task may flush its
        own buffers mid-drain; messages appended to *other* ranks'
        mailboxes are picked up by those ranks' tasks (same round if
        still running, else the next round).

        Coalescing differs from the sim round on purpose: envelopes from
        different peers arrive arbitrarily interleaved here (there is no
        deterministic round schedule), so adjacent-run coalescing would
        fragment the vectorized batch handlers into many small kernel
        calls.  Instead this *collect* phase only accumulates
        batch-handler messages into the rank's persistent groups
        (handler -> args list); :meth:`_execute_groups_rank` then runs
        each handler once over everything the whole round delivered —
        the comm layer guarantees no cross-sender delivery order, so
        the regrouping is within contract.  Scalar handlers still run
        in place, in arrival order."""
        ctx = self.ranks[rank]
        batch_handlers = self._batch_handlers
        handlers = self._handlers
        cluster = self.cluster
        tls = self._tls
        counts = self._pbuf_count[rank]
        flush = self._flush_parallel
        rel = self._rel
        ws = self.world_size
        invoked = 0
        moved = 0
        groups = self._rank_groups[rank]
        pending = cluster.mailbox_len(rank)
        while True:
            if pending == 0:
                # Push out this rank's buffered sends and pending acks,
                # then re-check — scalar handlers (and concurrent peers)
                # may have appended in the meantime.
                for dest in range(ws):
                    if counts[dest]:
                        flush(rank, dest)
                if rel is not None:
                    # Rank-confined ack flush: acks for frames this rank
                    # received go out to the senders' mailboxes.
                    rel.flush_acks_for(rank)
                pending = cluster.mailbox_len(rank)
                if pending == 0:
                    break
                continue
            pending -= 1
            item = cluster.drain_one(rank)
            if item is None:
                pending = 0
                continue
            moved += 1
            _src, payload = item
            tag = payload[0]
            if tag == _REL:
                # Reliability frame: ack/dedup at the transport layer,
                # then fall through with the inner payload.
                if not rel.on_receive(rank, _src, payload[1]):
                    continue
                payload = payload[2]
                tag = payload[0]
            elif tag == _ACK:
                rel.on_ack(rank, _src, payload[1])
                continue
            if tag == _HBATCH:
                # Handler-homogeneous envelope: adopt the args list
                # wholesale (first arrival) or extend — no entry scan.
                h = payload[1]
                lst = payload[2]
                g = groups.get(h)
                if g is None:
                    groups[h] = lst
                else:
                    g.extend(lst)
                continue
            if tag == _SBATCH:
                for handler, args, seq in payload[1]:
                    if handler in batch_handlers:
                        g = groups.get(handler)
                        if g is None:
                            g = groups[handler] = []
                        g.append(args)
                        continue
                    # Globalize the sender's per-rank counter so
                    # current_message_seq totally orders scalar
                    # deliveries across senders.
                    tls.cms = seq * ws + _src
                    try:
                        handlers[handler](ctx, *args)
                    finally:
                        tls.cms = None
                    invoked += 1
                continue
            _tag, seq, handler, args = payload
            if handler in batch_handlers:
                g = groups.get(handler)
                if g is None:
                    g = groups[handler] = []
                g.append(args)
                continue
            tls.cms = seq * ws + _src
            try:
                handlers[handler](ctx, *args)
            finally:
                tls.cms = None
            invoked += 1
        self._rank_handled[rank] += invoked
        if moved:
            # Heartbeat signal: this rank drained traffic this round.
            self._last_progress[rank] = self._tick
        return moved

    def _execute_groups_rank(self, rank: int) -> int:
        """Execute phase of a parallel barrier round: run each batch
        handler once over everything :meth:`_drain_rank` accumulated for
        ``rank`` this round.  Handlers may emit (send buffers) or
        self-deliver (mailbox); the barrier loop's next collect pass
        picks both up.  Rank-confined like the collect phase."""
        groups = self._rank_groups[rank]
        if not groups:
            return 0
        self._rank_groups[rank] = {}
        ctx = self.ranks[rank]
        batch_handlers = self._batch_handlers
        invoked = 0
        for h, args_list in groups.items():
            batch_handlers[h](ctx, args_list)
            invoked += len(args_list)
        self._rank_handled[rank] += invoked
        return invoked

    def _merge_rank_sinks(self) -> None:
        """Fold per-rank counters and statistics sinks into the shared
        aggregates.  Driver-only, called at the barrier with no sections
        in flight — this is what makes per-rank stat aggregation
        race-free under the parallel executor."""
        stats = self.cluster.stats
        for rank in range(self.world_size):
            sink = self._rank_stats[rank]
            if sink.by_type:
                for t, s in sink.by_type.items():
                    stats.record_many(t, s.count, s.bytes,
                                      s.offnode_count, s.offnode_bytes)
                sink.by_type.clear()
            phase_sink = self._rank_phase_stats[rank]
            if phase_sink:
                for ph, ms in phase_sink.items():
                    agg = self.phase_stats.setdefault(ph, MessageStats())
                    for t, s in ms.by_type.items():
                        agg.record_many(t, s.count, s.bytes,
                                        s.offnode_count, s.offnode_bytes)
                phase_sink.clear()
            self.flush_count += self._rank_flush[rank]
            self._rank_flush[rank] = 0
            self.handler_invocations += self._rank_handled[rank]
            self._rank_handled[rank] = 0
            self._rank_async[rank] = 0

    def _has_buffered(self) -> bool:
        if self._parallel:
            return any(c for row in self._pbuf_count for c in row)
        return any(
            self._buffers[s][d]
            for s in range(self.world_size)
            for d in range(self.world_size)
        )

    def reset_in_flight(self) -> None:
        """Discard every in-flight message and all reliable-delivery
        bookkeeping (crash recovery: the driver restores rank state from
        a checkpoint, so traffic from the failed epoch must not leak
        into the replay)."""
        for s in range(self.world_size):
            for d in range(self.world_size):
                self._buffers[s][d] = []
                self._buffer_bytes[s][d] = 0
        self.cluster.clear_mailboxes()
        self.async_count_since_barrier = 0
        if self._parallel:
            for r in range(self.world_size):
                self._rank_async[r] = 0
                self._rank_flush[r] = 0
                self._rank_handled[r] = 0
                self._rank_stats[r].reset()
                self._rank_phase_stats[r].clear()
                for d in range(self.world_size):
                    self._pbuf[r][d].clear()
                    self._pbuf_scalar[r][d] = []
                    self._pbuf_count[r][d] = 0
                self._rank_groups[r].clear()
        if self._rel is not None:
            self._rel.reset()

    # -- degraded mode ----------------------------------------------------------

    def exclude_ranks(self, ranks) -> None:
        """Degraded mode: remove ``ranks`` from the build.  The
        transport discards their traffic, the reliability layer stops
        awaiting their acks (and drops sends to them), and SPMD sections
        skip them until :meth:`readmit_ranks`.  The supervisor owns the
        application-state consequences (zeroing their contribution to
        convergence counters, repairing their shards on re-admission)."""
        ranks = {int(r) for r in ranks}
        self.excluded_ranks |= ranks
        self.cluster.mark_failed(ranks)

    def readmit_ranks(self) -> set:
        """End degraded mode: clear failure marks, revive the excluded
        ranks, and return them (the caller runs the neighborhood-repair
        pass that rebuilds their application state)."""
        ranks = set(self.excluded_ranks)
        self.excluded_ranks.clear()
        self.cluster.repair_all()
        return ranks

    # -- SPMD driver helpers ------------------------------------------------------

    def run_on_all(self, fn: Callable[[RankContext], None]) -> None:
        """Run ``fn`` once per live rank (the SPMD program section
        between barriers; excluded ranks are skipped in degraded mode).
        Under the sanitizer each invocation executes *as* its rank, so
        touching another rank's state raises."""
        ctxs = self.ranks
        if self.excluded_ranks:
            ctxs = [c for c in ctxs if c.rank not in self.excluded_ranks]
        if self._parallel:
            # Rank sections run concurrently; the executor joins every
            # future before returning (exceptions propagate) and applies
            # the sanitizer's rank scope per worker thread.
            self._executor.run_ranks(fn, ctxs, self.sanitizer)
            return
        san = self.sanitizer
        if san is None:
            for ctx in ctxs:
                fn(ctx)
        else:
            for ctx in ctxs:
                with san.rank_scope(ctx.rank):
                    fn(ctx)

    def allreduce_sum(self, value_fn: Callable[[RankContext], float]) -> float:
        """Sum-allreduce of a per-rank value (used for the Algorithm 1
        line 23 termination counter)."""
        return self.cluster.allreduce_sum([value_fn(ctx) for ctx in self.ranks])

    @property
    def elapsed_sim_seconds(self) -> float:
        return self.cluster.ledger.elapsed
