"""YGM-style asynchronous RPC layer (Section 4.1).

YGM's programming model is *fire-and-forget remote procedure calls*: a
sender names a destination rank, a function, and arguments; the function
runs at the destination at some later time; nobody is notified of
completion; a global ``barrier()`` waits until all messages (including
those generated while processing messages) are done.  YGM buffers
messages per destination and ships a buffer when it exceeds a threshold.

:class:`YGMWorld` reproduces those semantics on the simulated cluster:

- ``async_call(src, dest, handler, *args)`` buffers an RPC and records
  it in the per-type message statistics (the Figure 4 measurement),
- buffers auto-flush at ``flush_threshold`` messages or
  ``flush_threshold_bytes`` modeled bytes per destination (real YGM
  caps by bytes), charging the sender one latency ``alpha`` per flush
  plus ``beta`` per byte — batching behaviour has a visible cost
  signature,
- ``barrier()`` flushes everything and drains mailboxes to quiescence,
  running handlers on their destination ranks (which may send more),
  then folds per-rank clocks into the BSP makespan,
- ``async_count_since_barrier`` supports the paper's Section 4.4
  application-level batching (barrier every N global requests).

Handlers receive a :class:`RankContext` giving them their rank id, a
rank-local state namespace, a per-rank RNG, and the ability to send
further async calls and charge modeled compute time.

**Reliable delivery mode.**  With a fault injector attached to the
cluster (:mod:`.faults`) the network may drop, duplicate, delay, or
reorder traffic.  ``reliable=True`` turns on a TCP-style recovery layer
so handler effects stay *effectively-once*:

- every remote message carries a per-``(src, dest)`` sequence number,
- receivers acknowledge sequence numbers positively; acks are batched
  per peer and piggybacked at the end of each delivery round,
- unacknowledged messages are retransmitted after a timeout (measured
  in barrier delivery rounds) with exponential backoff and a bounded
  retry budget — exhausting the budget raises
  :class:`~repro.errors.FaultToleranceError` rather than silently
  corrupting the build,
- receivers remember delivered sequence numbers and suppress duplicate
  handler invocations (retransmits and injected duplicates alike).

Every message additionally carries a *global send sequence* number (one
counter per world, stamped at ``async_call`` time, exposed to handlers
as ``world.current_message_seq``), which lets order-sensitive consumers
such as :class:`~repro.runtime.containers.DistributedMap` apply
same-key writes in send order even when flush order or injected
reordering scrambles delivery order.

All fault-recovery work is accounted: retransmits and acks appear in
:class:`MessageStats` (message types ``"retransmit"`` / ``"ack"``) and
in the shared :class:`~repro.runtime.instrumentation.FaultStats`, so
ablations can report the overhead of reliability.  When no injector is
attached and ``reliable=False`` (the default), none of this machinery
runs and message accounting is byte-for-byte what it always was.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

import numpy as np

from ..analysis.sanitizer import OwnedState, Sanitizer, sanitizer_requested
from ..errors import FaultToleranceError, RankFailureError, RuntimeStateError
from ..utils.rng import derive_rng
from .instrumentation import FaultStats, MessageStats
from .simmpi import SimCluster

Handler = Callable[..., None]

# Mailbox payload tags.  SimCluster is payload-agnostic; these are the
# YGM layer's wire formats.
_CALL = "call"        # ("call", send_seq, handler, args)
_REL = "rel"          # ("rel", rel_seq, send_seq, handler, args)
_ACK = "ack"          # ("ack", (rel_seq, ...))
_BATCH = "bflush"     # ("bflush", [(handler, args, send_seq, nbytes), ...])

# Modeled size of one acked sequence number on the wire.
_ACK_SEQ_BYTES = 4

# Retransmit backoff is capped so a stuck message spins the barrier loop
# a bounded number of rounds per retry instead of 2**attempts.
_MAX_BACKOFF_TICKS = 32


class RankContext:
    """What a handler sees as "this MPI rank".

    Attributes
    ----------
    rank:
        This rank's id in ``[0, world_size)``.
    state:
        Rank-local storage: the application hangs its shard here (the
        vertex features and neighbor lists this rank owns).
    rng:
        A per-rank deterministic generator.
    """

    def __init__(self, world: "YGMWorld", rank: int, seed: int) -> None:
        self.world = world
        self.rank = int(rank)
        # Sanitizing worlds tag the namespace with its owner so handler
        # code reaching into another rank's state raises; otherwise a
        # plain dict keeps the hot path untouched.
        self.state: Dict[str, Any] = (
            OwnedState(world.sanitizer, rank) if world.sanitizer is not None
            else {})
        self.rng: np.random.Generator = derive_rng(seed, rank)

    @property
    def world_size(self) -> int:
        return self.world.world_size

    def async_call(self, dest: int, handler: str, *args: Any,
                   nbytes: int = 0, msg_type: str = "other") -> None:
        """Fire-and-forget RPC to ``dest`` (may be this rank)."""
        self.world.async_call(self.rank, dest, handler, *args,
                              nbytes=nbytes, msg_type=msg_type)

    def async_call_block(self, msgs, msg_type: str = "other") -> None:
        """Emit a prepared block of RPCs — see
        :meth:`YGMWorld.async_call_block`."""
        self.world.async_call_block(self.rank, msgs, msg_type=msg_type)

    def charge_compute(self, seconds: float) -> None:
        """Charge modeled compute time to this rank's clock."""
        self.world.cluster.ledger.charge(self.rank, seconds)

    def charge_distance(self, dim: int, count: int = 1) -> None:
        """Charge ``count`` distance evaluations of dimension ``dim``."""
        net = self.world.cluster.net
        self.charge_compute(net.distance_cost(dim) * count)

    def charge_update(self, count: int = 1) -> None:
        """Charge ``count`` neighbor-heap update attempts."""
        net = self.world.cluster.net
        self.charge_compute(net.compute_per_update * count)


class YGMWorld:
    """The simulated YGM communicator.

    Parameters
    ----------
    cluster:
        Underlying simulated MPI cluster.
    flush_threshold:
        Messages buffered per destination before an automatic flush —
        models YGM's internal buffer (Section 4.4: "YGM buffers messages
        internally ... automatically sends messages when its internal
        buffer exceeds a certain threshold").
    seed:
        Root seed for per-rank RNGs.
    reliable:
        Turn on acked, deduplicated, retransmitting delivery (see the
        module docstring).  Without a fault injector this only adds ack
        traffic; with one it masks drop/duplicate/delay/reorder faults.
    retry_timeout:
        Delivery rounds an unacked message waits before its first
        retransmit; doubles per attempt (``retry_backoff``) up to a cap.
    max_retries:
        Retransmit budget per message; exceeding it raises
        :class:`~repro.errors.FaultToleranceError`.
    """

    def __init__(self, cluster: SimCluster, flush_threshold: int = 1024,
                 flush_threshold_bytes: int = 1 << 20,
                 seed: int = 0, reliable: bool = False,
                 retry_timeout: int = 4, retry_backoff: float = 2.0,
                 max_retries: int = 32,
                 sanitize: bool | None = None) -> None:
        if flush_threshold < 1:
            raise RuntimeStateError("flush_threshold must be >= 1")
        if flush_threshold_bytes < 1:
            raise RuntimeStateError("flush_threshold_bytes must be >= 1")
        if retry_timeout < 1:
            raise RuntimeStateError("retry_timeout must be >= 1")
        if max_retries < 1:
            raise RuntimeStateError("max_retries must be >= 1")
        # Ownership sanitizer (repro.analysis): None when off, so every
        # runtime guard is a single attribute test.
        if sanitize is None:
            sanitize = sanitizer_requested()
        self.sanitizer: Sanitizer | None = Sanitizer() if sanitize else None
        self.cluster = cluster
        self.world_size = cluster.world_size
        self.flush_threshold = int(flush_threshold)
        self.flush_threshold_bytes = int(flush_threshold_bytes)
        self._handlers: Dict[str, Handler] = {}
        # Batch variants: name -> fn(ctx, args_list).  The delivery loop
        # coalesces contiguous same-handler runs into one invocation when
        # a batch variant exists; absent variants change nothing.
        self._batch_handlers: Dict[str, Handler] = {}
        # is_offnode is pure topology; precompute it so the per-message
        # hot path does two list indexings instead of a method call.
        self._offnode: List[List[bool]] = [
            [cluster.is_offnode(s, d) for d in range(self.world_size)]
            for s in range(self.world_size)
        ]
        # _buffers[src][dest] -> list of (handler_name, args, send_seq, nbytes)
        self._buffers: List[List[List[Tuple[str, tuple, int, int]]]] = [
            [[] for _ in range(self.world_size)] for _ in range(self.world_size)
        ]
        self._buffer_bytes: List[List[int]] = [
            [0] * self.world_size for _ in range(self.world_size)
        ]
        self.ranks: List[RankContext] = [
            RankContext(self, r, seed) for r in range(self.world_size)
        ]
        self.async_count_since_barrier = 0
        self.flush_count = 0
        self.handler_invocations = 0
        self._in_barrier = False
        self._phase = "default"
        self.phase_stats: Dict[str, MessageStats] = {}
        # Global send sequence: stamped on every async_call, exposed to
        # the running handler as current_message_seq.
        self._send_seq = 0
        self.current_message_seq: int | None = None
        # Reliable-delivery state (allocated lazily; None when off).
        self.reliable = bool(reliable)
        self.retry_timeout = int(retry_timeout)
        self.retry_backoff = float(retry_backoff)
        self.max_retries = int(max_retries)
        self._tick = 0
        injector = getattr(cluster, "injector", None)
        self.fault_stats: FaultStats = (
            injector.stats if injector is not None else FaultStats())
        if self.reliable:
            # _rel_next[src][dest] -> next per-pair sequence number.
            self._rel_next = [[0] * self.world_size
                              for _ in range(self.world_size)]
            # _rel_unacked[src][dest] -> {rel_seq: [handler, args, send_seq,
            #                                       nbytes, attempts, sent_tick]}
            self._rel_unacked: List[List[Dict[int, list]]] = [
                [dict() for _ in range(self.world_size)]
                for _ in range(self.world_size)
            ]
            # _rel_seen[dest][src] -> delivered rel_seqs (receiver dedup).
            self._rel_seen: List[List[set]] = [
                [set() for _ in range(self.world_size)]
                for _ in range(self.world_size)
            ]
            # _ack_pending[receiver][sender] -> rel_seqs to ack this round.
            self._ack_pending: List[List[List[int]]] = [
                [[] for _ in range(self.world_size)]
                for _ in range(self.world_size)
            ]

    @property
    def injector(self):
        return getattr(self.cluster, "injector", None)

    # -- handler registry -----------------------------------------------------

    def register_handler(self, name: str, fn: Handler) -> None:
        """Register ``fn`` to run as ``name``; the first positional
        argument passed to ``fn`` is the destination :class:`RankContext`."""
        if name in self._handlers:
            raise RuntimeStateError(f"handler {name!r} already registered")
        if self.sanitizer is not None:
            # Wrapping at registration keeps the delivery loop identical
            # whether or not the sanitizer is on.
            fn = self.sanitizer.wrap_handler(name, fn)
        self._handlers[name] = fn

    def register_handlers(self, **handlers: Handler) -> None:
        for name, fn in handlers.items():
            self.register_handler(name, fn)

    def register_batch_handler(self, name: str, fn: Handler) -> None:
        """Register a batch variant for an already-registered handler.

        ``fn(ctx, args_list)`` receives the destination context and the
        list of argument tuples of a contiguous run of ``name`` messages,
        and must be *semantically identical* to invoking the scalar
        handler once per tuple, in order (the batch execution engine's
        bit-identity contract).
        """
        if name not in self._handlers:
            raise RuntimeStateError(
                f"batch handler {name!r} has no scalar registration")
        if name in self._batch_handlers:
            raise RuntimeStateError(f"batch handler {name!r} already registered")
        if self.sanitizer is not None:
            fn = self.sanitizer.wrap_handler(name, fn)
        self._batch_handlers[name] = fn

    def register_batch_handlers(self, **handlers: Handler) -> None:
        for name, fn in handlers.items():
            self.register_batch_handler(name, fn)

    # -- phases (stats scoping) -------------------------------------------------

    def set_phase(self, phase: str) -> None:
        """Name the current phase; message stats are also recorded per phase."""
        self._phase = phase
        self.phase_stats.setdefault(phase, MessageStats())

    @property
    def stats(self) -> MessageStats:
        return self.cluster.stats

    def stats_for(self, phase: str) -> MessageStats:
        return self.phase_stats.get(phase, MessageStats())

    # -- sending ------------------------------------------------------------

    def async_call(self, src: int, dest: int, handler: str, *args: Any,
                   nbytes: int = 0, msg_type: str = "other") -> None:
        if handler not in self._handlers:
            raise RuntimeStateError(f"unknown handler {handler!r}")
        if not 0 <= dest < self.world_size:
            raise RuntimeStateError(f"destination rank {dest} out of range")
        self.async_count_since_barrier += 1
        seq = self._send_seq
        self._send_seq += 1
        if src != dest:
            offnode = self._offnode[src][dest]
            self.cluster.stats.record(msg_type, nbytes, offnode)
            self.phase_stats.setdefault(self._phase, MessageStats()).record(
                msg_type, nbytes, offnode
            )
            self._buffers[src][dest].append((handler, args, seq, nbytes))
            self._buffer_bytes[src][dest] += nbytes
            # Real YGM caps its buffers by *bytes* (a feature-vector
            # message fills a buffer far faster than a Type 3 reply);
            # the message-count cap is the secondary guard.
            if (len(self._buffers[src][dest]) >= self.flush_threshold
                    or self._buffer_bytes[src][dest] >= self.flush_threshold_bytes):
                self._flush(src, dest)
        else:
            # Local async call: no wire traffic, but still deferred
            # delivery (YGM runs even self-messages from the queue).
            self.cluster.deliver(src, dest, (_CALL, seq, handler, args))

    def block_emitter(self, src: int, msg_type: str = "other"):
        """Low-overhead emitter for a block of same-type RPCs from ``src``.

        Returns ``(send, close)``.  ``send(dest, handler, args, nbytes)``
        is semantically one :meth:`async_call`; ``close()`` must be
        called after the last send.  Exactness contract with the scalar
        path:

        - every message gets the same global send-sequence stamp it
          would have gotten from :meth:`async_call` (a local counter,
          written back at close — nothing reads ``_send_seq`` mid-block
          because handlers only run inside :meth:`barrier`),
        - buffer appends and flush triggers happen per message, in
          message order, so mid-block flush charges land on the ledger
          at exactly the same points as in a scalar emission loop,
        - message statistics are integer counters, hence order-free;
          they are aggregated locally and recorded once at close via
          :meth:`MessageStats.record_many`.

        Only one emitter may be active at a time (flushes triggered by
        ``send`` enqueue to mailboxes without running handlers, so there
        is no reentrancy).  A validation error raised by ``send`` aborts
        the block with stats unrecorded — acceptable, since it signals a
        programming error that aborts the run.
        """
        world = self
        handlers = self._handlers
        buffers_src = self._buffers[src]
        buffer_bytes_src = self._buffer_bytes[src]
        offrow = self._offnode[src]
        deliver = self.cluster.deliver
        ft = self.flush_threshold
        ftb = self.flush_threshold_bytes
        ws = self.world_size
        start_seq = self._send_seq
        next_seq = start_seq
        on_c = on_b = off_c = off_b = 0
        checked_handler = None

        def send(dest: int, handler: str, args: tuple, nbytes: int) -> None:
            nonlocal next_seq, on_c, on_b, off_c, off_b, checked_handler
            if handler is not checked_handler:
                if handler not in handlers:
                    raise RuntimeStateError(f"unknown handler {handler!r}")
                checked_handler = handler
            if not 0 <= dest < ws:
                raise RuntimeStateError(f"destination rank {dest} out of range")
            seq = next_seq
            next_seq = seq + 1
            if src != dest:
                if offrow[dest]:
                    off_c += 1
                    off_b += nbytes
                else:
                    on_c += 1
                    on_b += nbytes
                buf = buffers_src[dest]
                buf.append((handler, args, seq, nbytes))
                nb = buffer_bytes_src[dest] + nbytes
                buffer_bytes_src[dest] = nb
                if len(buf) >= ft or nb >= ftb:
                    world._flush(src, dest)
            else:
                deliver(src, dest, (_CALL, seq, handler, args))

        def close() -> None:
            world._send_seq = next_seq
            world.async_count_since_barrier += next_seq - start_seq
            total_c = on_c + off_c
            if total_c:
                total_b = on_b + off_b
                world.cluster.stats.record_many(
                    msg_type, total_c, total_b, off_c, off_b)
                world.phase_stats.setdefault(
                    world._phase, MessageStats()).record_many(
                        msg_type, total_c, total_b, off_c, off_b)

        return send, close

    def async_call_block(self, src: int, msgs,
                         msg_type: str = "other") -> None:
        """Emit a prepared block of RPCs from ``src`` — semantically a
        loop of :meth:`async_call` over ``(dest, handler, args, nbytes)``
        tuples, with per-message overhead amortized."""
        send, close = self.block_emitter(src, msg_type)
        for dest, handler, args, nbytes in msgs:
            send(dest, handler, args, nbytes)
        close()

    def emit_run(self, src: int, triples, nbytes: int,
                 msg_type: str = "other") -> None:
        """Emit a uniform-``nbytes`` run of RPCs from ``src`` —
        semantically a loop of :meth:`async_call` over
        ``(dest, handler, args)`` triples.

        Driver-internal fast path: unlike :meth:`block_emitter` it skips
        per-message handler/destination validation (the caller computes
        destinations from the owner table and handler names are
        literals), and exploits the constant message size to total the
        statistics with one multiply.  Ordering guarantees are identical
        to the emitter: sequence stamps, buffer appends, and
        threshold-triggered flushes happen per message, in order.
        """
        buffers_src = self._buffers[src]
        buffer_bytes_src = self._buffer_bytes[src]
        offrow = self._offnode[src]
        if self.injector is None:
            # Injector-free local delivery is a plain mailbox append
            # (deliver()'s alive/range checks cannot fire: no crashes
            # without an injector, destinations come from owner tables).
            local_deliver = self.cluster._mailboxes[src].append
        else:
            deliver = self.cluster.deliver
            local_deliver = (lambda item:
                             deliver(src, src, item[1]))
        flush = self._flush
        ft = self.flush_threshold
        ftb = self.flush_threshold_bytes
        start_seq = seq = self._send_seq
        on_c = off_c = 0
        for dest, handler, args in triples:
            if src != dest:
                if offrow[dest]:
                    off_c += 1
                else:
                    on_c += 1
                buf = buffers_src[dest]
                buf.append((handler, args, seq, nbytes))
                nb = buffer_bytes_src[dest] + nbytes
                buffer_bytes_src[dest] = nb
                if len(buf) >= ft or nb >= ftb:
                    flush(src, dest)
            else:
                local_deliver((src, (_CALL, seq, handler, args)))
            seq += 1
        self._send_seq = seq
        self.async_count_since_barrier += seq - start_seq
        total_c = on_c + off_c
        if total_c:
            self.cluster.stats.record_many(
                msg_type, total_c, total_c * nbytes, off_c, off_c * nbytes)
            self.phase_stats.setdefault(
                self._phase, MessageStats()).record_many(
                    msg_type, total_c, total_c * nbytes, off_c, off_c * nbytes)

    def _flush(self, src: int, dest: int) -> None:
        buf = self._buffers[src][dest]
        if not buf:
            return
        offnode = self._offnode[src][dest]
        nbytes = self._buffer_bytes[src][dest]
        net = self.cluster.net
        self.cluster.ledger.charge(
            src, net.flush_cost(offnode) + net.message_cost(nbytes, offnode)
        )
        self.flush_count += 1
        inj = self.injector
        if self._batch_handlers and inj is None and not self.reliable:
            # Envelope delivery: hand the whole buffer over as ONE
            # mailbox item.  Without an injector, per-message delivery
            # is a plain append per entry, so an envelope preserving
            # entry order is byte-identical in every observable —
            # flushed buffers never interleave with other deliveries.
            # Faulty or reliable runs keep the per-message wire format
            # (drop/duplicate/delay decisions are per message).
            self.cluster.deliver(src, dest, (_BATCH, buf))
            self._buffers[src][dest] = []
            self._buffer_bytes[src][dest] = 0
            return
        if inj is not None:
            stall = inj.maybe_stall()
            if stall:
                self.cluster.ledger.charge(src, stall)
            order = inj.maybe_reorder(len(buf))
            if order is not None:
                buf = [buf[int(i)] for i in order]
        for handler, args, seq, msg_nbytes in buf:
            if self.reliable:
                rel_seq = self._rel_next[src][dest]
                self._rel_next[src][dest] = rel_seq + 1
                self._rel_unacked[src][dest][rel_seq] = [
                    handler, args, seq, msg_nbytes, 0, self._tick]
                self.cluster.deliver(src, dest,
                                     (_REL, rel_seq, seq, handler, args))
            else:
                self.cluster.deliver(src, dest, (_CALL, seq, handler, args))
        self._buffers[src][dest] = []
        self._buffer_bytes[src][dest] = 0

    def flush_all(self) -> None:
        for src in range(self.world_size):
            for dest in range(self.world_size):
                self._flush(src, dest)

    # -- draining / barrier ----------------------------------------------------

    def _process_round(self) -> int:
        """Deliver every currently-queued message once, in deterministic
        rank order; returns how many messages were applied.

        When a handler has a registered batch variant, contiguous runs
        of that handler within a rank's snapshot are drained first and
        applied as ONE batch invocation.  This is exact because draining
        a message has no handler-visible effect: reliable-delivery
        bookkeeping (acks, dedup) still happens per message before the
        message joins its run, ``_ACK`` control traffic is bookkeeping
        only (it neither runs a handler nor breaks a run), and the batch
        handler itself is contractually equivalent to the scalar handler
        applied per message in order.  ``current_message_seq`` is None
        during a batch invocation — no batch variants are registered for
        order-sensitive consumers that read it.
        """
        ran = 0
        batch_handlers = self._batch_handlers
        handlers = self._handlers
        for rank in range(self.world_size):
            ctx = self.ranks[rank]
            # Snapshot the queue length so messages enqueued by handlers
            # in this round are processed in a later round (fair order).
            pending = len(self.cluster._mailboxes[rank])
            run_handler: str | None = None
            run_args: list = []
            for _ in range(pending):
                item = self.cluster.drain_one(rank)
                if item is None:
                    break
                src, payload = item
                tag = payload[0]
                if tag == _BATCH:
                    # A flushed buffer delivered whole: same entries, in
                    # the same order, as per-message delivery would give.
                    buf = payload[1]
                    # Fast path: an envelope whose entries all carry one
                    # batchable handler joins the current run with a
                    # C-level extend.  Run granularity is immaterial:
                    # rowwise kernels are bitwise row-independent, and
                    # every other effect is applied per message in order.
                    hset = {m[0] for m in buf}
                    if len(hset) == 1:
                        h = buf[0][0]
                        if h in batch_handlers:
                            if run_handler is not None and run_handler != h:
                                ran += self._run_batch(ctx, run_handler, run_args)
                                run_args = []
                            run_handler = h
                            run_args.extend([m[1] for m in buf])
                            continue
                    for handler, args, seq, _nb in buf:
                        if handler in batch_handlers:
                            if run_handler is not None and run_handler != handler:
                                ran += self._run_batch(ctx, run_handler, run_args)
                                run_args = []
                            run_handler = handler
                            run_args.append(args)
                            continue
                        if run_handler is not None:
                            ran += self._run_batch(ctx, run_handler, run_args)
                            run_handler, run_args = None, []
                        self.current_message_seq = seq
                        try:
                            handlers[handler](ctx, *args)
                        finally:
                            self.current_message_seq = None
                        self.handler_invocations += 1
                        ran += 1
                    continue
                if tag == _CALL:
                    _tag, seq, handler, args = payload
                elif tag == _REL:
                    _tag, rel_seq, seq, handler, args = payload
                    # Positive ack regardless of dedup outcome: the
                    # sender needs to stop retransmitting either way.
                    self._ack_pending[rank][src].append(rel_seq)
                    seen = self._rel_seen[rank][src]
                    if rel_seq in seen:
                        self.fault_stats.duplicates_suppressed += 1
                        continue
                    seen.add(rel_seq)
                else:  # _ACK
                    unacked = self._rel_unacked[rank][src]
                    for rel_seq in payload[1]:
                        unacked.pop(rel_seq, None)
                    continue
                if handler in batch_handlers:
                    if run_handler is not None and run_handler != handler:
                        ran += self._run_batch(ctx, run_handler, run_args)
                        run_args = []
                    run_handler = handler
                    run_args.append(args)
                    continue
                if run_handler is not None:
                    ran += self._run_batch(ctx, run_handler, run_args)
                    run_handler, run_args = None, []
                self.current_message_seq = seq
                try:
                    handlers[handler](ctx, *args)
                finally:
                    self.current_message_seq = None
                self.handler_invocations += 1
                ran += 1
            if run_handler is not None:
                ran += self._run_batch(ctx, run_handler, run_args)
        if self.reliable:
            self._flush_acks()
        return ran

    def _run_batch(self, ctx: RankContext, handler: str,
                   args_list: list) -> int:
        """Apply a coalesced run of ``handler`` messages at ``ctx``."""
        self._batch_handlers[handler](ctx, args_list)
        n = len(args_list)
        self.handler_invocations += n
        return n

    def _flush_acks(self) -> None:
        """Ship this round's accumulated acks, one batched control
        message per (receiver, sender) pair — the piggyback model: acks
        ride the next flush rather than each costing a latency."""
        net = self.cluster.net
        for receiver in range(self.world_size):
            row = self._ack_pending[receiver]
            for sender in range(self.world_size):
                seqs = row[sender]
                if not seqs:
                    continue
                row[sender] = []
                offnode = self.cluster.is_offnode(receiver, sender)
                nbytes = _ACK_SEQ_BYTES * len(seqs)
                self.cluster.stats.record("ack", nbytes, offnode)
                self.cluster.ledger.charge(
                    receiver, net.message_cost(nbytes, offnode))
                self.fault_stats.acks_sent += 1
                self.cluster.deliver(receiver, sender, (_ACK, tuple(seqs)))

    def _reliable_tick(self) -> None:
        """Retransmit unacked messages whose backoff window expired."""
        for src in range(self.world_size):
            for dest in range(self.world_size):
                unacked = self._rel_unacked[src][dest]
                if not unacked:
                    continue
                offnode = self.cluster.is_offnode(src, dest)
                for rel_seq, entry in list(unacked.items()):
                    handler, args, seq, nbytes, attempts, sent_tick = entry
                    window = min(
                        self.retry_timeout * (self.retry_backoff ** attempts),
                        _MAX_BACKOFF_TICKS)
                    if self._tick - sent_tick < window:
                        continue
                    if attempts >= self.max_retries:
                        self.fault_stats.retry_budget_exhausted += 1
                        raise FaultToleranceError(
                            f"message {handler!r} {src}->{dest} unacked after "
                            f"{attempts} retransmits; network unrecoverable",
                            src=src, dest=dest, attempts=attempts)
                    entry[4] = attempts + 1
                    entry[5] = self._tick
                    self.fault_stats.retransmits += 1
                    self.cluster.stats.record("retransmit", nbytes, offnode)
                    self.cluster.ledger.charge(
                        src, self.cluster.net.message_cost(nbytes, offnode))
                    self.cluster.deliver(src, dest,
                                         (_REL, rel_seq, seq, handler, args))

    def _reliable_pending(self) -> bool:
        return self.reliable and any(
            self._rel_unacked[s][d]
            for s in range(self.world_size)
            for d in range(self.world_size)
        )

    def _check_crashed(self) -> None:
        inj = self.injector
        if inj is not None and inj.crashed:
            raise RankFailureError(inj.crashed)

    def barrier(self, phase: str | None = None) -> float:
        """Flush everything and run handlers until global quiescence, then
        synchronize simulated clocks.  Returns superstep duration in
        simulated seconds.

        Raises :class:`~repro.errors.RankFailureError` when a fault
        injector has crashed a rank (a real MPI barrier over a dead rank
        aborts the communicator), and
        :class:`~repro.errors.FaultToleranceError` when reliable mode
        exhausts a message's retry budget.
        """
        if self._in_barrier:
            raise RuntimeStateError("nested barrier (handler called barrier)")
        self._in_barrier = True
        inj = self.injector
        try:
            while True:
                self._check_crashed()
                self.flush_all()
                ran = self._process_round()
                if ran == 0 and self.cluster.all_quiescent():
                    # A handler may have refilled buffers, a delayed
                    # message may still be parked in the injector, and
                    # reliable mode may be awaiting acks; quiesce only
                    # when every source of future work is empty.
                    if (not self._has_buffered()
                            and not self._reliable_pending()
                            and (inj is None or inj.pending_delayed() == 0)):
                        break
                # Advance simulated delivery time: release due delayed
                # messages and retransmit overdue unacked ones.
                self._tick += 1
                self.cluster.release_due_faults()
                if self.reliable:
                    self._reliable_tick()
            self.async_count_since_barrier = 0
            return self.cluster.ledger.barrier(self.cluster.net, phase or self._phase)
        finally:
            self._in_barrier = False

    def _has_buffered(self) -> bool:
        return any(
            self._buffers[s][d]
            for s in range(self.world_size)
            for d in range(self.world_size)
        )

    def reset_in_flight(self) -> None:
        """Discard every in-flight message and all reliable-delivery
        bookkeeping (crash recovery: the driver restores rank state from
        a checkpoint, so traffic from the failed epoch must not leak
        into the replay)."""
        for s in range(self.world_size):
            for d in range(self.world_size):
                self._buffers[s][d] = []
                self._buffer_bytes[s][d] = 0
        self.cluster.clear_mailboxes()
        self.async_count_since_barrier = 0
        if self.reliable:
            for s in range(self.world_size):
                for d in range(self.world_size):
                    self._rel_next[s][d] = 0
                    self._rel_unacked[s][d].clear()
                    self._rel_seen[s][d].clear()
                    self._ack_pending[s][d].clear()

    # -- SPMD driver helpers ------------------------------------------------------

    def run_on_all(self, fn: Callable[[RankContext], None]) -> None:
        """Run ``fn`` once per rank (the SPMD program section between
        barriers).  Under the sanitizer each invocation executes *as*
        its rank, so touching another rank's state raises."""
        san = self.sanitizer
        if san is None:
            for ctx in self.ranks:
                fn(ctx)
        else:
            for ctx in self.ranks:
                with san.rank_scope(ctx.rank):
                    fn(ctx)

    def allreduce_sum(self, value_fn: Callable[[RankContext], float]) -> float:
        """Sum-allreduce of a per-rank value (used for the Algorithm 1
        line 23 termination counter)."""
        return self.cluster.allreduce_sum([value_fn(ctx) for ctx in self.ranks])

    @property
    def elapsed_sim_seconds(self) -> float:
        return self.cluster.ledger.elapsed
