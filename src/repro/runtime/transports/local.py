"""Shared-memory transport for the ``parallel`` execution backend.

Where :class:`~repro.runtime.transports.sim.SimCluster` simulates an MPI
network — deterministic delivery, alpha-beta cost charging, optional
fault injection — :class:`LocalTransport` is the real thing scaled down
to one process: rank sections run concurrently on an executor's thread
pool and hand work to each other exclusively through these mailboxes.

Concurrency contract (the PR-2 ownership rules, now load-bearing):

- each mailbox is a :class:`collections.deque`; ``append`` and
  ``popleft`` are atomic in CPython, so the multiple-producer /
  single-consumer pattern used by the comm layer (any rank's thread may
  *deliver to* a mailbox; only the owning rank's thread *drains* it)
  needs no further locking,
- all other per-rank state (send buffers, RNGs, shards, heaps) is
  owned by exactly one rank and only ever touched from that rank's
  section — the mailboxes are the *only* cross-rank channel,
- collectives, ``clear_mailboxes``, and ``release_due_faults`` are
  driver-only operations, called between phases/rounds when no rank
  section is running.

Fault injection is supported: the injector's RNG and statistics are
shared mutable state reached from concurrent producers, so every
consultation is serialized through one lock.  Delivery under faults is
therefore linearized but *not* deterministic — thread scheduling decides
the order producers draw injector decisions, so two runs under the same
plan see different per-message fault schedules (crash schedules remain
deterministic: they advance driver-side per iteration).  Reliable
delivery masks whichever schedule occurs, which is exactly the
equivalence the conformance suite pins.  Reorder/stall decorations are
not consulted here: parallel delivery order is already
scheduler-dependent and there is no modeled clock to charge stalls to.

The cost model stays sim-only: the ledger is a
:class:`~repro.runtime.netmodel.NullLedger` (the backend's figure of
merit is the host wall clock, not simulated seconds) and passing a
``net`` model raises :class:`~repro.errors.ConfigError`.
"""

from __future__ import annotations

import threading
from typing import Any

from ...config import ClusterConfig
from ...errors import ConfigError, RuntimeStateError
from ..faults import FaultInjector
from ..netmodel import NetworkModel, NullLedger
from .base import Transport


class LocalTransport(Transport):
    """Thread-safe mailboxes for concurrently executing rank sections.

    Parameters
    ----------
    config:
        Node/process shape.  Topology still matters for *accounting*
        (off-node message statistics keep their meaning), just not for
        delivery cost.
    net:
        Accepted for interface compatibility with :class:`SimCluster`
        construction sites but must be ``None``: the cost model is
        sim-only.  A default :class:`NetworkModel` instance is still
        attached so code that reads constants (e.g. scalar handlers
        calling ``ctx.charge_distance``) keeps working against the
        discarding ledger.
    injector:
        Optional :class:`~repro.runtime.faults.FaultInjector`; when set,
        remote deliveries consult it (under the fault lock) for
        drop/duplicate/delay decisions and traffic touching a crashed
        rank is discarded.
    """

    def __init__(self, config: ClusterConfig,
                 net: NetworkModel | None = None,
                 injector: FaultInjector | None = None) -> None:
        if net is not None:
            raise ConfigError(
                "the cost model is sim-only: NetworkModel constants have "
                "no meaning on the parallel backend (use backend='sim' "
                "for cost-modeled runs)")
        super().__init__(config, None,
                         NullLedger(world_size=config.world_size))
        self.injector = injector
        self._fault_lock = threading.Lock()

    def deliver(self, src: int, dest: int, item: Any,
                fault_exempt: bool = False) -> None:
        self._check_alive()
        if not 0 <= dest < self.world_size:
            raise RuntimeStateError(f"destination rank {dest} out of range")
        if self.marked_failed and (src in self.marked_failed
                                   or dest in self.marked_failed):
            return
        inj = self.injector
        if inj is not None and not fault_exempt:
            # One lock serializes every injector consultation: the RNG
            # stream and fault counters are shared state reached from
            # concurrent producer threads.
            with self._fault_lock:
                race = self.race
                if race is not None:
                    # The injector is one shared cell; the tracked fault
                    # lock in the lockset is what keeps concurrent
                    # producers from reporting against each other.
                    race.access(("injector",), write=True)
                if inj.is_crashed(src) or inj.is_crashed(dest):
                    inj.stats.crash_dropped += 1
                    return
                delays = inj.on_deliver(src, dest) if src != dest else None
                if delays is not None:
                    for delay in delays:
                        if delay == 0:
                            self._mailboxes[dest].append((src, item))
                        else:
                            inj.hold(delay, src, dest, item)
                    return
        self._mailboxes[dest].append((src, item))

    def attach_race(self, race: Any) -> None:
        """Attach the race sanitizer: record the instance and swap the
        fault lock for a tracked one so injector consultations carry it
        in their lockset."""
        super().attach_race(race)
        self._fault_lock = race.tracked_lock("transport.fault_lock",
                                             self._fault_lock)

    def drain_one(self, rank: int) -> Any:
        """Pop the oldest pending item for ``rank``.

        Mailboxes are multiple-producer / single-consumer: any thread
        may append, only the owning rank's section pops.  Under the race
        sanitizer each pop records a write on the rank's mailbox cell,
        so a second concurrent consumer (or a driver-side reset during a
        dispatch) is reported with both stacks.  The base class's
        unhooked ``drain_one`` keeps the sim hot path untouched.
        """
        race = self.race
        if race is not None:
            race.access(("mailbox", rank), write=True)
        mb = self._mailboxes[rank]
        return mb.popleft() if mb else None

    def release_due_faults(self) -> int:
        """Advance the injector's delay clock one tick and deliver any
        now-due delayed messages.  Driver-only (called between barrier
        rounds with no rank section in flight); the lock still guards
        against a straggling producer mid-``deliver``."""
        inj = self.injector
        if inj is None:
            return 0
        with self._fault_lock:
            race = self.race
            if race is not None:
                race.access(("injector",), write=True)
            due = inj.tick()
            released = 0
            for src, dest, item in due:
                if inj.is_crashed(src) or inj.is_crashed(dest):
                    inj.stats.crash_dropped += 1
                    continue
                if self.marked_failed and (src in self.marked_failed
                                           or dest in self.marked_failed):
                    continue
                self._mailboxes[dest].append((src, item))
                released += 1
            return released
