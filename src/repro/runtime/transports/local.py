"""Shared-memory transport for the ``parallel`` execution backend.

Where :class:`~repro.runtime.transports.sim.SimCluster` simulates an MPI
network — deterministic delivery, alpha-beta cost charging, optional
fault injection — :class:`LocalTransport` is the real thing scaled down
to one process: rank sections run concurrently on an executor's thread
pool and hand work to each other exclusively through these mailboxes.

Concurrency contract (the PR-2 ownership rules, now load-bearing):

- each mailbox is a :class:`collections.deque`; ``append`` and
  ``popleft`` are atomic in CPython, so the multiple-producer /
  single-consumer pattern used by the comm layer (any rank's thread may
  *deliver to* a mailbox; only the owning rank's thread *drains* it)
  needs no further locking,
- all other per-rank state (send buffers, RNGs, shards, heaps) is
  owned by exactly one rank and only ever touched from that rank's
  section — the mailboxes are the *only* cross-rank channel,
- collectives and ``clear_mailboxes`` are driver-only operations,
  called between phases when no rank section is running.

Sim-only features are structurally absent rather than silently ignored:
the constructor refuses a fault injector, and the ledger is a
:class:`~repro.runtime.netmodel.NullLedger` (no cost model — the
backend's figure of merit is the host wall clock, not simulated
seconds).  Requesting those features on the parallel backend raises
:class:`~repro.errors.ConfigError` at :class:`~repro.core.dnnd.DNND`
construction.
"""

from __future__ import annotations

from ...config import ClusterConfig
from ...errors import ConfigError
from ..netmodel import NetworkModel, NullLedger
from .base import Transport


class LocalTransport(Transport):
    """Thread-safe mailboxes for concurrently executing rank sections.

    Parameters
    ----------
    config:
        Node/process shape.  Topology still matters for *accounting*
        (off-node message statistics keep their meaning), just not for
        delivery cost.
    net:
        Accepted for interface compatibility with :class:`SimCluster`
        construction sites but must be ``None``: the cost model is
        sim-only.  A default :class:`NetworkModel` instance is still
        attached so code that reads constants (e.g. scalar handlers
        calling ``ctx.charge_distance``) keeps working against the
        discarding ledger.
    """

    def __init__(self, config: ClusterConfig,
                 net: NetworkModel | None = None) -> None:
        if net is not None:
            raise ConfigError(
                "the cost model is sim-only: NetworkModel constants have "
                "no meaning on the parallel backend (use backend='sim' "
                "for cost-modeled runs)")
        super().__init__(config, None,
                         NullLedger(world_size=config.world_size))
