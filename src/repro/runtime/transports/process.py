"""Process transport: per-rank worker processes + shared-memory datasets.

The third execution backend (``backend="process"``) escapes the GIL by
giving every rank real OS-process parallelism:

- the **dataset** (and any other read-only numpy array) lives in a
  ``multiprocessing.shared_memory`` segment created once by the driver
  and mapped zero-copy into every worker (:class:`SharedArrayOwner` /
  :func:`attach_shared_array`);
- each **worker process** owns a contiguous-stride subset of ranks
  (``rank % nworkers``) and runs a full, *non-parallel*
  :class:`~repro.runtime.ygm.YGMWorld` over a :class:`WorkerTransport`:
  messages between co-resident ranks stay in-process deque appends,
  messages to ranks owned by another worker travel as pickled frames
  ``(epoch, dest, src, payload)`` over that worker's ``mp.Queue`` inbox
  — the payloads are exactly the ``call``/``bflush``/``hflush``
  envelopes the comm layer already produces, so the wire format is the
  sim wire format, serialized;
- the **driver** keeps the SPMD program counter: it broadcasts commands
  over per-worker pipes (:class:`ProcessTransport`), and
  :class:`ProcessWorld` gives the DNND driver the same barrier /
  phase / metrics / fault surface :class:`YGMWorld` does.

Quiescence across processes is a counting protocol: a barrier loops
``__round__`` commands, each worker drains its inbox + runs local
delivery rounds until locally idle and reports
``(frames_sent, frames_received, handlers_run)``; the barrier completes
when no worker ran a handler **and** the global sent/received frame
counts agree (frames still sitting in a queue's feeder thread keep the
counts unequal).  Counters and frames are stamped with an **epoch**:
``reset_in_flight`` bumps the epoch and zeroes the counters everywhere,
so frames lost inside a crashed worker (or stale frames from before a
recovery) can never wedge or corrupt a later barrier — stale-epoch
frames are discarded on ingest without being counted.

Failure semantics: a worker that dies (or is killed by a crash-plan
fault) is detected at the next command round-trip (broken pipe / EOF /
liveness sweep); *all* ranks it owned are marked failed and surface as
one :class:`~repro.errors.RankFailureError` through the same supervisor
path the sim backend uses.  ``repair_all`` respawns dead workers, whose
bootstrap rebuilds rank state from the shared-memory segment.
"""

from __future__ import annotations

import atexit
import importlib
import multiprocessing
import os
import queue as queue_mod
import signal
import traceback
import weakref
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Set, Tuple

import numpy as np

from ...config import ClusterConfig
from ...errors import ConfigError, RankFailureError, RuntimeStateError
from ..instrumentation import FaultStats, MessageStats
from ..metrics import NULL_METRICS, MetricsRegistry
from ..netmodel import NetworkModel, NullLedger
from .base import Transport

#: Environment override for the multiprocessing start method.
START_ENV = "REPRO_PROCESS_START"

#: Runtime-level worker commands (everything else goes to the app's
#: ``dispatch``).  Dunder-framed so application command names can never
#: collide with them.
CMD_ROUND = "__round__"
CMD_RESET = "__reset__"
CMD_STOP = "__stop__"
CMD_PING = "__ping__"


def _start_method(requested: str | None = None) -> str:
    """Pick the mp start method: explicit arg > env > fork-if-available.

    ``fork`` keeps worker spawn cheap (no re-import, inherits the page
    cache); platforms without it (Windows, some macOS configs) fall
    back to ``spawn``, which works because workers rebuild all state
    from their pickled bootstrap parameters + the shm segment.
    """
    method = requested or os.environ.get(START_ENV, "")
    if method:
        if method not in multiprocessing.get_all_start_methods():
            raise ConfigError(
                f"unsupported multiprocessing start method {method!r}; "
                f"available: {multiprocessing.get_all_start_methods()}")
        return method
    return ("fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn")


def _weak_shutdown_guard(transport: "ProcessTransport") -> Callable[[], None]:
    """An atexit callback that shuts the transport down *if it is still
    alive* — holding only a weak reference, so registering it never
    pins the transport (and its worker pool) until interpreter exit."""
    ref = weakref.ref(transport)

    def guard() -> None:
        t = ref()
        if t is not None:
            t.shutdown()
    return guard


# ---------------------------------------------------------------------------
# Shared-memory dataset segments
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SharedArraySpec:
    """Pickle-friendly handle to a shared-memory numpy array: everything
    a worker needs to map the segment zero-copy."""

    name: str
    shape: Tuple[int, ...]
    dtype: str


class SharedArrayOwner:
    """Driver-side owner of one shared-memory numpy segment.

    The owner creates the segment, copies the array in once, and is the
    *only* party that ever unlinks it.  Cleanup is layered so the
    segment cannot leak: context-manager exit, explicit :meth:`close`,
    and an ``atexit`` guard for builds that die mid-flight all funnel
    into the same idempotent teardown.
    """

    def __init__(self, array: np.ndarray) -> None:
        from multiprocessing import shared_memory

        arr = np.ascontiguousarray(array)
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(1, int(arr.nbytes)))
        self._view: Optional[np.ndarray] = np.ndarray(
            arr.shape, dtype=arr.dtype, buffer=self._shm.buf)
        self._view[...] = arr
        self.spec = SharedArraySpec(self._shm.name, tuple(arr.shape),
                                    arr.dtype.str)
        self._closed = False
        atexit.register(self.close)

    @property
    def view(self) -> np.ndarray:
        if self._view is None:
            raise RuntimeStateError("shared array already closed")
        return self._view

    def close(self) -> None:
        """Close + unlink the segment.  Idempotent; never raises."""
        if self._closed:
            return
        self._closed = True
        self._view = None
        try:
            self._shm.close()
        except (OSError, ValueError):  # pragma: no cover - teardown race
            pass
        try:
            self._shm.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover
            pass
        try:
            atexit.unregister(self.close)
        except Exception:  # pragma: no cover - interpreter teardown
            pass

    def __enter__(self) -> "SharedArrayOwner":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def attach_shared_array(spec: SharedArraySpec):
    """Worker-side zero-copy attach.  Returns ``(shm, view)``.

    The worker must keep ``shm`` alive as long as ``view`` is used and
    must *never* unlink — only the owner does.  Workers inherit the
    driver's resource-tracker process (both fork and spawn pass the
    tracker fd down), whose cache is a per-type *set*: the attach-side
    ``register`` collapses into the owner's entry and the owner's
    ``unlink`` performs the single ``unregister``, so no extra
    bookkeeping is needed here — an attach-side ``unregister`` would
    instead strip the owner's entry and make the final ``unlink`` race
    the tracker.
    """
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=spec.name)
    view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf)
    return shm, view


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

class WorkerTransport(Transport):
    """The transport a worker's in-process :class:`YGMWorld` runs over.

    It is a full ``world_size``-wide transport (so rank ids, topology,
    and off-node accounting match the sim backend exactly), but only the
    *owned* ranks' mailboxes ever fill: a delivery to a rank owned by
    another worker is serialized as an epoch-stamped frame onto that
    worker's inbox queue instead.
    """

    def __init__(self, config: ClusterConfig, owned, worker_of,
                 outboxes, worker_id: int) -> None:
        super().__init__(config, None,
                         NullLedger(world_size=config.world_size))
        self.worker_id = int(worker_id)
        self.owned: FrozenSet[int] = frozenset(int(r) for r in owned)
        self._worker_of: List[int] = list(worker_of)
        self._outboxes = outboxes
        self.epoch = 0
        self.frames_sent = 0
        self.frames_received = 0

    def begin_epoch(self, epoch: int) -> None:
        """Enter ``epoch``: zero the frame counters.  Frames stamped
        with any other epoch are discarded on ingest."""
        self.epoch = int(epoch)
        self.frames_sent = 0
        self.frames_received = 0

    def deliver(self, src: int, dest: int, item: Any,
                fault_exempt: bool = False) -> None:
        self._check_alive()
        if not 0 <= dest < self.world_size:
            raise RuntimeStateError(f"destination rank {dest} out of range")
        if self.marked_failed and (src in self.marked_failed
                                   or dest in self.marked_failed):
            return
        if dest in self.owned:
            self._mailboxes[dest].append((src, item))
            return
        self.frames_sent += 1
        self._outboxes[self._worker_of[dest]].put(
            (self.epoch, dest, src, item))

    def ingest(self, inbox) -> int:
        """Drain every frame currently in ``inbox`` (non-blocking) into
        the local mailboxes.  Returns the number of frames that produced
        local work; every *current-epoch* frame counts as received even
        if its destination has since been marked failed (the sender
        counted it as sent), stale-epoch frames count as nothing."""
        appended = 0
        while True:
            try:
                epoch, dest, src, item = inbox.get_nowait()
            except queue_mod.Empty:
                return appended
            if epoch != self.epoch:
                continue
            self.frames_received += 1
            if self.marked_failed and dest in self.marked_failed:
                continue
            self._mailboxes[dest].append((src, item))
            appended += 1


class WorkerComm:
    """Worker-side runtime glue between the command loop, the inbox
    queue, and the in-process :class:`YGMWorld`."""

    def __init__(self, worker_id: int, nworkers: int, owned,
                 transport: WorkerTransport, inbox,
                 config: ClusterConfig) -> None:
        self.worker_id = int(worker_id)
        self.nworkers = int(nworkers)
        self.owned: List[int] = [int(r) for r in owned]
        self.transport = transport
        self.inbox = inbox
        self.config = config

    def round(self, world) -> Tuple[int, int, int]:
        """One barrier round: ingest + flush + deliver until locally
        idle; report ``(frames_sent, frames_received, handlers_run)``
        cumulative for the current epoch / this round respectively."""
        activity = 0
        while True:
            ingested = self.transport.ingest(self.inbox)
            world.flush_all()
            ran = world._process_round()
            activity += ran
            if ingested == 0 and ran == 0 and not world._has_buffered():
                break
        return (self.transport.frames_sent, self.transport.frames_received,
                activity)

    def reset(self, epoch: int, world) -> None:
        """Epoch change: discard everything in flight, locally and in
        the inbox, then zero the frame counters."""
        while True:
            try:
                self.inbox.get_nowait()
            except queue_mod.Empty:
                break
        self.transport.begin_epoch(epoch)
        world.reset_in_flight()


def worker_main(worker_id: int, nworkers: int, config: ClusterConfig,
                conn, inboxes, bootstrap: Tuple[str, str], params: dict,
                start_epoch: int) -> None:
    """Entry point of one rank-worker process.

    ``bootstrap`` names ``(module, function)``; the function is imported
    in the child and called as ``fn(comm, params)``.  It must return an
    *app* object exposing ``world`` (the in-process :class:`YGMWorld`)
    and ``dispatch(cmd, payload)``; every non-runtime command received
    on the pipe is forwarded to it.  Replies are ``("ok", value)`` or
    ``("error", formatted_traceback)`` — the driver re-raises the
    latter with the worker traceback embedded.
    """
    owned = [r for r in range(config.world_size)
             if r % nworkers == worker_id]
    worker_of = [r % nworkers for r in range(config.world_size)]
    transport = WorkerTransport(config, owned, worker_of, inboxes, worker_id)
    transport.begin_epoch(start_epoch)
    comm = WorkerComm(worker_id, nworkers, owned, transport,
                      inboxes[worker_id], config)
    module = importlib.import_module(bootstrap[0])
    app = getattr(module, bootstrap[1])(comm, params)
    while True:
        try:
            cmd, payload = conn.recv()
        except (EOFError, OSError):
            break
        try:
            if cmd == CMD_STOP:
                conn.send(("ok", None))
                break
            if cmd == CMD_PING:
                conn.send(("ok", worker_id))
            elif cmd == CMD_ROUND:
                conn.send(("ok", comm.round(app.world)))
            elif cmd == CMD_RESET:
                comm.reset(payload["epoch"], app.world)
                app.on_reset()
                conn.send(("ok", None))
            else:
                conn.send(("ok", app.dispatch(cmd, payload)))
        except Exception:
            try:
                conn.send(("error", traceback.format_exc()))
            except (BrokenPipeError, OSError):  # pragma: no cover
                break


# ---------------------------------------------------------------------------
# Driver side
# ---------------------------------------------------------------------------

class ProcessTransport(Transport):
    """Driver-side transport: owns the worker pool, the command pipes,
    the inbox queues, and the epoch.

    Rank → worker mapping is ``rank % nworkers`` (strided, so
    consecutive ranks land on different workers and per-node topology
    stays mixed, like round-robin MPI placement).  Collectives run on
    the driver over per-rank contribution lists — the same contract as
    every other transport, so ``transport.collectives`` is conformant.
    """

    def __init__(self, config: ClusterConfig, net: NetworkModel | None = None,
                 workers: int = 0, start_method: str | None = None) -> None:
        if net is not None:
            raise ConfigError(
                "the process transport has no cost model; the network "
                "model is a simulation feature (use backend='sim')")
        super().__init__(config, None,
                         NullLedger(world_size=config.world_size))
        ws = config.world_size
        self.nworkers = max(1, min(int(workers) if workers else ws, ws))
        self.worker_of: List[int] = [r % self.nworkers for r in range(ws)]
        self.owned_by: List[List[int]] = [
            [r for r in range(ws) if r % self.nworkers == w]
            for w in range(self.nworkers)]
        self._ctx = multiprocessing.get_context(_start_method(start_method))
        self.epoch = 0
        self._procs: List[Any] = [None] * self.nworkers
        self._conns: List[Any] = [None] * self.nworkers
        self._inboxes = [self._ctx.Queue() for _ in range(self.nworkers)]
        self.dead_workers: Set[int] = set()
        #: Weak ref to a bound method called with the worker id when a
        #: dead worker is detected, before its ranks are marked failed
        #: (ProcessWorld folds that worker's last stats export into its
        #: base here).  Weak so the transport never keeps the world —
        #: and through it the executor — alive: the executor's GC
        #: finalizer is what shuts this transport down.
        self._death_hook: Optional["weakref.WeakMethod"] = None
        self._bootstrap: Optional[Tuple[str, str]] = None
        self._params: Optional[dict] = None
        self.started = False
        # atexit must not hold a strong reference either (it would pin
        # the transport until interpreter exit and defeat GC teardown);
        # shutdown() discards the guard.
        self._atexit_guard = _weak_shutdown_guard(self)
        atexit.register(self._atexit_guard)

    # -- lifecycle -----------------------------------------------------------

    def set_death_hook(self, hook: Callable[[int], None]) -> None:
        """Register a *bound method* to call (with the worker id) when a
        dead worker is first detected.  Stored weakly — see
        ``_death_hook``."""
        self._death_hook = weakref.WeakMethod(hook)

    def start(self, bootstrap: Tuple[str, str], params: dict) -> None:
        """Spawn the full worker pool; each worker runs ``bootstrap``."""
        if self.started:
            raise RuntimeStateError("process transport already started")
        self._bootstrap = bootstrap
        self._params = params
        self.started = True
        for w in range(self.nworkers):
            self._spawn(w)

    def _spawn(self, w: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=worker_main,
            args=(w, self.nworkers, self.config, child_conn, self._inboxes,
                  self._bootstrap, self._params, self.epoch),
            name=f"repro-rank-worker-{w}", daemon=True)
        proc.start()
        child_conn.close()
        self._procs[w] = proc
        self._conns[w] = parent_conn

    def shutdown(self) -> None:
        if not self._alive:
            return
        for w in range(self.nworkers):
            conn = self._conns[w]
            if conn is None or w in self.dead_workers:
                continue
            try:
                conn.send((CMD_STOP, None))
            except (BrokenPipeError, OSError):
                pass
        for w, proc in enumerate(self._procs):
            if proc is None:
                continue
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5)
        for conn in self._conns:
            if conn is not None:
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass
        for q in self._inboxes:
            try:
                q.close()
                q.cancel_join_thread()
            except (OSError, ValueError):  # pragma: no cover
                pass
        try:
            atexit.unregister(self._atexit_guard)
        except Exception:  # pragma: no cover - interpreter teardown
            pass
        super().shutdown()

    # -- failure detection / injection ---------------------------------------

    def _on_worker_death(self, w: int) -> Set[int]:
        """Record worker ``w`` as dead; mark all its ranks failed.
        Returns the ranks newly marked."""
        if w in self.dead_workers:
            return set()
        self.dead_workers.add(w)
        hook = self._death_hook() if self._death_hook is not None else None
        if hook is not None:
            hook(w)
        newly = set(self.owned_by[w]) - self.marked_failed
        self.mark_failed(self.owned_by[w])
        conn = self._conns[w]
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
            self._conns[w] = None
        return newly

    def kill_rank(self, rank: int) -> None:
        """SIGKILL the worker owning ``rank`` (crash-plan injection).
        Every rank co-resident in that worker dies with it — real
        process-failure semantics."""
        w = self.worker_of[int(rank)]
        proc = self._procs[w]
        if proc is not None and proc.is_alive():
            os.kill(proc.pid, signal.SIGKILL)
            proc.join(timeout=10)
        self._on_worker_death(w)

    def liveness_sweep(self) -> None:
        """Detect workers that died without a command in flight."""
        for w in range(self.nworkers):
            if w in self.dead_workers:
                continue
            proc = self._procs[w]
            if proc is not None and not proc.is_alive():
                self._on_worker_death(w)

    def repair_all(self) -> None:
        """Clear failure marks and respawn dead workers.  Respawned
        workers bootstrap from scratch (shm attach + fresh rank state)
        at the *current* epoch; their old inbox queues are reused —
        any stale frames in them are from a previous epoch and are
        discarded on ingest."""
        super().repair_all()
        for w in sorted(self.dead_workers):
            self._spawn(w)
        self.dead_workers.clear()

    # -- command fabric ------------------------------------------------------

    def alive_workers(self) -> List[int]:
        return [w for w in range(self.nworkers) if w not in self.dead_workers]

    def command_all(self, cmd: str, payload: Any = None) -> Dict[int, Any]:
        """Broadcast ``(cmd, payload)`` to every live worker and collect
        replies.  Workers found dead on the way are recorded (their
        ranks marked failed) and simply absent from the result — the
        caller decides whether that is a :class:`RankFailureError`."""
        self._check_alive()
        self.liveness_sweep()
        sent = []
        for w in self.alive_workers():
            try:
                self._conns[w].send((cmd, payload))
                sent.append(w)
            except (BrokenPipeError, OSError):
                self._on_worker_death(w)
        results: Dict[int, Any] = {}
        for w in sent:
            try:
                status, value = self._conns[w].recv()
            except (EOFError, OSError):
                self._on_worker_death(w)
                continue
            if status == "error":
                raise RuntimeStateError(
                    f"worker {w} failed running {cmd!r}:\n{value}")
            results[w] = value
        return results

    def command_one(self, w: int, cmd: str, payload: Any = None) -> Any:
        """Send ``(cmd, payload)`` to one worker; ``None`` if it died."""
        self._check_alive()
        if w in self.dead_workers:
            return None
        try:
            self._conns[w].send((cmd, payload))
            status, value = self._conns[w].recv()
        except (BrokenPipeError, EOFError, OSError):
            self._on_worker_death(w)
            return None
        if status == "error":
            raise RuntimeStateError(
                f"worker {w} failed running {cmd!r}:\n{value}")
        return value

    def bump_epoch(self) -> None:
        """Advance the epoch and reset every live worker into it: they
        drain + discard their inboxes, zero frame counters, and clear
        their worlds' in-flight buffers."""
        self.epoch += 1
        self.command_all(CMD_RESET, {"epoch": self.epoch})


def _stats_export_empty() -> dict:
    return {"stats": {}, "phases": {}, "flushes": 0, "invocations": 0,
            "locals": 0}


def _fold_type_stats(into: Dict[str, list], types: Dict[str, tuple]) -> None:
    for msg_type, (count, nbytes, ocount, obytes) in types.items():
        cell = into.setdefault(msg_type, [0, 0, 0, 0])
        cell[0] += count
        cell[1] += nbytes
        cell[2] += ocount
        cell[3] += obytes


class ProcessWorld:
    """The driver's comm-layer facade for the process backend.

    Presents the slice of the :class:`YGMWorld` surface the DNND driver
    uses — barriers, phases, metrics publication, fault bookkeeping,
    exclusion/readmission, in-flight reset — implemented as command
    broadcasts to the worker pool.  Message statistics are *rebuilt in
    place* from per-worker cumulative exports at every barrier (the
    aggregate objects are captured by reference in ``DNNDResult``), with
    per-worker bases folded in when a worker dies so a respawned
    worker's zeroed counters never erase history.
    """

    #: The process backend never runs the ownership sanitizer (it is a
    #: sim/parallel debugging feature); driver sections check this.
    sanitizer = None
    race = None

    def __init__(self, cluster: ProcessTransport, executor=None,
                 metrics: MetricsRegistry | None = None,
                 fault_plan=None, seed: int = 0) -> None:
        self.cluster = cluster
        self.world_size = cluster.world_size
        self.executor = executor
        self.metrics: MetricsRegistry = (
            metrics if metrics is not None else NULL_METRICS)
        self.fault_stats = FaultStats()
        self.fault_plan = fault_plan
        self._fired_crashes: Set[Tuple[int, int]] = set()
        self.excluded_ranks: Set[int] = set()
        self.phase_stats: Dict[str, MessageStats] = {}
        self._phase = "default"
        self.flush_count = 0
        self.handler_invocations = 0
        self.local_deliveries = 0
        self.seed = int(seed)
        # Per-worker cumulative stat exports: ``_last`` is the current
        # incarnation's latest export, ``_base`` the folded total of all
        # previous incarnations (updated by the transport's death hook).
        self._last: Dict[int, dict] = {}
        self._base: Dict[int, dict] = {}
        # Same two-level scheme for per-rank shard totals (cumulative
        # push attempts, distance evals, kernel tile flops, kernel
        # fallbacks): rank -> [pushes, evals, tile_flops, fallbacks].
        self._totals_last: Dict[int, list] = {}
        self._totals_base: Dict[int, list] = {}
        self._totals_rank_of: Dict[int, int] = {
            r: cluster.worker_of[r] for r in range(self.world_size)}
        cluster.set_death_hook(self._fold_dead_worker)

    # -- death-time folding ---------------------------------------------------

    def _fold_dead_worker(self, w: int) -> None:
        last = self._last.pop(w, None)
        if last is not None:
            base = self._base.setdefault(w, _stats_export_empty())
            _fold_type_stats(base["stats"], last["stats"])
            for phase, types in last["phases"].items():
                _fold_type_stats(base["phases"].setdefault(phase, {}),
                                 types)
            base["flushes"] += last["flushes"]
            base["invocations"] += last["invocations"]
            base["locals"] += last.get("locals", 0)
        for rank in self.cluster.owned_by[w]:
            cur = self._totals_last.pop(rank, None)
            if cur is not None:
                cell = self._totals_base.setdefault(rank, [0, 0, 0, 0])
                for i, val in enumerate(cur):
                    cell[i] += val

    # -- stats synchronization ------------------------------------------------

    def _sync_stats(self) -> None:
        for w, export in self.cluster.command_all("export_stats").items():
            self._last[w] = export
        merged: Dict[str, list] = {}
        merged_phases: Dict[str, Dict[str, list]] = {}
        flushes = 0
        invocations = 0
        local_deliveries = 0
        for source in (self._base, self._last):
            for export in source.values():
                _fold_type_stats(merged, {
                    t: tuple(v) for t, v in export["stats"].items()})
                for phase, types in export["phases"].items():
                    _fold_type_stats(
                        merged_phases.setdefault(phase, {}),
                        {t: tuple(v) for t, v in types.items()})
                flushes += export["flushes"]
                invocations += export["invocations"]
                local_deliveries += export.get("locals", 0)
        self._rebuild(self.cluster.stats, merged)
        for phase, types in merged_phases.items():
            self._rebuild(self.phase_stats.setdefault(phase, MessageStats()),
                          types)
        self.flush_count = flushes
        self.handler_invocations = invocations
        self.local_deliveries = local_deliveries

    @staticmethod
    def _rebuild(stats: MessageStats, types: Dict[str, list]) -> None:
        """Overwrite ``stats`` in place with the merged totals (the
        object identity must survive — results hold references)."""
        stats.reset()
        for msg_type, (count, nbytes, ocount, obytes) in types.items():
            stats.record_many(msg_type, count, nbytes, ocount, obytes)

    def shard_totals(self) -> Dict[int, Tuple[int, int, int, int, int]]:
        """Per-rank ``(push_attempts, distance_evals, update_count,
        kernel_tile_flops, kernel_fallbacks)``.  All but the update
        count are cumulative (base + current incarnation); the update
        count is the current iteration's and never folded."""
        current: Dict[int, Tuple[int, ...]] = {}
        for _w, entries in self.cluster.command_all("shard_totals").items():
            for rank, pushes, evals, updates, flops, falls in entries:
                current[rank] = (pushes, evals, updates, flops, falls)
                self._totals_last[rank] = [pushes, evals, flops, falls]
        out: Dict[int, Tuple[int, int, int, int, int]] = {}
        for rank in range(self.world_size):
            base = self._totals_base.get(rank, (0, 0, 0, 0))
            pushes, evals, updates, flops, falls = current.get(
                rank, (0, 0, 0, 0, 0))
            out[rank] = (base[0] + pushes, base[1] + evals, updates,
                         base[2] + flops, base[3] + falls)
        return out

    # -- barrier / quiescence -------------------------------------------------

    def barrier(self, phase: str | None = None) -> float:
        """Run ``__round__`` commands until the cluster is quiescent:
        no worker ran a handler and global frame counts agree."""
        while True:
            rounds = self.cluster.command_all(CMD_ROUND)
            self._check_crashed()
            activity = sum(a for (_s, _r, a) in rounds.values())
            frames_sent = sum(s for (s, _r, _a) in rounds.values())
            frames_recv = sum(r for (_s, r, _a) in rounds.values())
            if activity == 0 and frames_sent == frames_recv:
                break
        self._sync_stats()
        elapsed = self.cluster.ledger.barrier(self.cluster.net, phase)
        self.publish_metrics()
        return elapsed

    def _check_crashed(self) -> None:
        failed = self.cluster.failed_ranks() - self.excluded_ranks
        if failed:
            self.fault_stats.detected += len(failed)
            raise RankFailureError(failed)

    # -- driver command surface ----------------------------------------------

    def run_section(self, name: str, params: dict | None = None
                    ) -> Dict[int, Any]:
        """Run the named SPMD section on every live worker (each covers
        its owned, non-excluded ranks); failures surface exactly like a
        crashed rank at a sim barrier."""
        if self.executor is not None:
            self.executor.dispatches += 1
        results = self.cluster.command_all(
            "section", {"name": name, "params": params or {}})
        self._check_crashed()
        return results

    def command(self, cmd: str, payload: Any = None) -> Dict[int, Any]:
        results = self.cluster.command_all(cmd, payload)
        self._check_crashed()
        return results

    def set_phase(self, phase: str) -> None:
        self._phase = phase
        self.phase_stats.setdefault(phase, MessageStats())
        self.cluster.command_all("set_phase", {"phase": phase})

    # -- fault tolerance surface ----------------------------------------------

    def advance_iteration(self, iteration: int) -> None:
        """Fire scheduled crash-plan kills for ``iteration`` (each once):
        the owning worker is SIGKILLed — detection happens at the next
        command round-trip, like a peer noticing a dead MPI rank."""
        if self.fault_plan is None:
            return
        for it, rank in self.fault_plan.crashes:
            if it == iteration and (it, rank) not in self._fired_crashes:
                self._fired_crashes.add((it, rank))
                self.fault_stats.crashes += 1
                self.cluster.kill_rank(rank)

    def reset_in_flight(self) -> None:
        """Abandon every in-flight message cluster-wide by entering a
        new epoch (stale frames — including any lost inside a dead
        worker — are excluded from all future quiescence counting)."""
        self.cluster.bump_epoch()

    def exclude_ranks(self, ranks) -> None:
        ranks = {int(r) for r in ranks}
        self.excluded_ranks |= ranks
        self.cluster.mark_failed(ranks)
        self.cluster.command_all("exclude", {"ranks": sorted(ranks)})

    def readmit_ranks(self) -> set:
        """End degraded mode: respawn dead workers, clear failure marks
        everywhere, and return the set of previously excluded ranks."""
        repaired = set(self.excluded_ranks)
        self.excluded_ranks = set()
        self.cluster.repair_all()
        self.cluster.command_all("readmit", {})
        return repaired

    # -- metrics --------------------------------------------------------------

    def publish_metrics(self) -> None:
        """Synchronize the registry from runtime aggregates — the same
        names, in the same publication style (absolute assignment), as
        :meth:`YGMWorld.publish_metrics`."""
        m = self.metrics
        if not m.enabled:
            return
        self.cluster.stats.publish(m)
        self.fault_stats.publish(m)
        if self.fault_plan is not None:
            # Sim publishes this through its injector; crash plans are
            # the injector analogue here and nothing is ever delayed.
            m.set_gauge("faults.pending_delayed", 0.0)
        m.set_counter("executor.tasks", self.handler_invocations)
        m.set_counter("comm.flushes", self.flush_count)
        m.set_counter("comm.barriers", self.cluster.ledger.barriers)
        m.set_counter("transport.collectives",
                      getattr(self.cluster, "collectives", 0))
        m.set_counter("executor.dispatches",
                      getattr(self.executor, "dispatches", None) or 0)
        # Locality split, folded from per-worker exports at _sync_stats —
        # same names as YGMWorld.publish_metrics (conformance contract).
        m.set_counter("comm.local_deliveries", self.local_deliveries)
        m.set_counter("comm.remote_deliveries",
                      self.cluster.stats.total_count())
        m.set_gauge("degraded.ranks", float(len(self.excluded_ranks)))
