"""The Transport protocol — the seam under the YGM comm layer.

A transport owns the *mechanics* of moving already-formatted payloads
between ranks: per-rank FIFO mailboxes for point-to-point traffic and
driver-level collectives over per-rank contribution lists.  Everything
above the seam — buffering, batch coalescing, reliable seq/ack delivery,
message statistics — lives in :class:`~repro.runtime.ygm.YGMWorld` and
talks only to this interface.

Two transports implement it:

- :class:`~repro.runtime.transports.sim.SimCluster` — the deterministic,
  cost-modeled, fault-injectable simulation (the default; bit-identical
  to the pre-seam runtime),
- :class:`~repro.runtime.transports.local.LocalTransport` — a
  shared-memory backend whose mailboxes are safe for concurrent
  producers (rank sections running on the parallel executor), with no
  cost model and no fault injection.

Collectives are implemented here once; cost accounting is injected
through the ``_charge_collective`` / ``_charge_transfer`` hooks so the
simulated transport charges its alpha-beta model while the local
transport charges nothing.  Because the simulation is cooperative,
collectives take *per-rank contribution lists* and return per-rank
results — the driver (which plays the role of the SPMD program counter)
passes in what each rank would have contributed.  This keeps rank code
honest: a rank can only use its own slot of the result.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Sequence, Tuple

from ...config import ClusterConfig
from ...errors import RuntimeStateError
from ..instrumentation import MessageStats
from ..netmodel import CostLedger, NetworkModel


class Transport:
    """Base point-to-point + collectives substrate.

    Subclasses provide delivery semantics (:meth:`deliver`) and the cost
    hooks; the deque mailboxes, drain interface, and collective logic
    are shared.  Every subclass exposes the same attributes the comm
    layer relies on: ``config``, ``world_size``, ``net``, ``ledger``,
    ``stats`` (the sink the YGM layer records into), and ``injector``
    (``None`` unless the transport supports fault injection).
    """

    def __init__(self, config: ClusterConfig, net: NetworkModel | None,
                 ledger: CostLedger) -> None:
        self.config = config
        self.net = net or NetworkModel()
        self.world_size = config.world_size
        self.ledger = ledger
        self.stats = MessageStats()
        self.injector = None
        #: Collective invocations (allreduce/gather/allgather/bcast/
        #: alltoallv) — driven by the same driver code on every backend,
        #: so the ``transport.collectives`` metric is conformant across
        #: sim and parallel.
        self.collectives = 0
        self._mailboxes: List[Deque[Tuple[int, Any]]] = [
            deque() for _ in range(self.world_size)]
        self._alive = True

    # -- lifecycle -----------------------------------------------------------

    def shutdown(self) -> None:
        self._alive = False

    def _check_alive(self) -> None:
        if not self._alive:
            raise RuntimeStateError("cluster has been shut down")

    # -- topology ------------------------------------------------------------

    def node_of(self, rank: int) -> int:
        return self.config.node_of(rank)

    def is_offnode(self, src: int, dest: int) -> bool:
        return self.node_of(src) != self.node_of(dest)

    # -- point-to-point transport ---------------------------------------------

    def deliver(self, src: int, dest: int, item: Any,
                fault_exempt: bool = False) -> None:
        """Enqueue ``item`` into ``dest``'s mailbox (already-flushed
        data).  Subclasses may perturb remote deliveries (fault
        injection); the base form is an exact FIFO append."""
        self._check_alive()
        if not 0 <= dest < self.world_size:
            raise RuntimeStateError(f"destination rank {dest} out of range")
        self._mailboxes[dest].append((src, item))

    def self_append(self, rank: int) -> Callable[[Tuple[int, Any]], None]:
        """Bound append onto ``rank``'s own mailbox — the comm layer's
        fast path for local (``src == dest``) deliveries emitted from
        rank context, where none of :meth:`deliver`'s checks can fire.
        The returned callable takes the full ``(src, payload)`` entry."""
        return self._mailboxes[rank].append

    def release_due_faults(self) -> int:
        """Advance injected-delay clocks one tick; returns how many
        held messages were released (0 on transports without faults)."""
        return 0

    def clear_mailboxes(self) -> None:
        """Discard all undelivered traffic (crash-recovery reset)."""
        for mb in self._mailboxes:
            mb.clear()

    def mailbox_len(self, rank: int) -> int:
        return len(self._mailboxes[rank])

    def mailbox_empty(self, rank: int) -> bool:
        return not self._mailboxes[rank]

    def all_quiescent(self) -> bool:
        return all(not mb for mb in self._mailboxes)

    def drain_one(self, rank: int) -> Tuple[int, Any] | None:
        """Pop the oldest pending item for ``rank`` or None."""
        mb = self._mailboxes[rank]
        return mb.popleft() if mb else None

    def pending_total(self) -> int:
        return sum(len(mb) for mb in self._mailboxes)

    # -- cost hooks ------------------------------------------------------------

    def _charge_collective(self, item_bytes: int) -> None:
        """Charge every rank for one collective of ``item_bytes`` per
        rank (no-op unless the transport models costs)."""

    def _charge_transfer(self, src: int, dest: int, nbytes: int) -> None:
        """Charge ``src`` for one bulk point-to-point transfer inside a
        collective (no-op unless the transport models costs)."""

    # -- collectives -----------------------------------------------------------

    def allreduce(
        self, contributions: Sequence[Any],
        op: Callable[[Any, Any], Any] | None = None,
        item_bytes: int = 8,
    ) -> List[Any]:
        """Reduce per-rank contributions with ``op`` (default sum); every
        rank receives the result."""
        self._check_alive()
        self.collectives += 1
        self._require_full(contributions)
        if op is None:
            total: Any = 0
            for c in contributions:
                total = total + c
        else:
            it = iter(contributions)
            total = next(it)
            for c in it:
                total = op(total, c)
        self._charge_collective(item_bytes)
        return [total] * self.world_size

    def allreduce_sum(self, contributions: Sequence[float]) -> float:
        """Convenience: scalar sum-allreduce, returns the single value."""
        return self.allreduce(list(contributions))[0]

    def gather(self, contributions: Sequence[Any], root: int = 0,
               item_bytes: int = 8) -> List[List[Any] | None]:
        """Root receives the list of contributions; other ranks get None.

        Like every collective here, the return value is *per-rank*:
        ``result[root]`` is the contribution list, every other slot is
        ``None`` — so rank code cannot accidentally read data that only
        the root owns (MPI_Gather's actual contract).
        """
        self._check_alive()
        self.collectives += 1
        if not 0 <= root < self.world_size:
            raise RuntimeStateError(f"root rank {root} out of range")
        self._require_full(contributions)
        self._charge_collective(item_bytes)
        gathered = list(contributions)
        return [gathered if r == root else None for r in range(self.world_size)]

    def allgather(self, contributions: Sequence[Any],
                  item_bytes: int = 8) -> List[List[Any]]:
        self._check_alive()
        self.collectives += 1
        self._require_full(contributions)
        self._charge_collective(item_bytes * self.world_size)
        gathered = list(contributions)
        return [list(gathered) for _ in range(self.world_size)]

    def bcast(self, value: Any, root: int = 0, item_bytes: int = 8) -> List[Any]:
        self._check_alive()
        self.collectives += 1
        if not 0 <= root < self.world_size:
            raise RuntimeStateError(f"root rank {root} out of range")
        self._charge_collective(item_bytes)
        return [value] * self.world_size

    def alltoallv(self, send_lists: Sequence[Sequence[Any]],
                  item_bytes: int = 8) -> List[List[Any]]:
        """``send_lists[src][dest]`` -> per-dest receive lists.

        Used by bulk redistribution steps (e.g. gathering a distributed
        graph); charges bandwidth for every off-diagonal transfer.
        """
        self._check_alive()
        self.collectives += 1
        self._require_full(send_lists)
        recv: List[List[Any]] = [[] for _ in range(self.world_size)]
        for src in range(self.world_size):
            row = send_lists[src]
            if len(row) != self.world_size:
                raise RuntimeStateError(
                    f"alltoallv: rank {src} provided {len(row)} destination lists, "
                    f"expected {self.world_size}"
                )
            for dest in range(self.world_size):
                payload = row[dest]
                recv[dest].extend(payload)
                if src != dest and payload:
                    self._charge_transfer(src, dest, item_bytes * len(payload))
        return recv

    def _require_full(self, contributions: Sequence[Any]) -> None:
        if len(contributions) != self.world_size:
            raise RuntimeStateError(
                f"collective needs one contribution per rank "
                f"({self.world_size}), got {len(contributions)}"
            )
