"""The Transport protocol — the seam under the YGM comm layer.

A transport owns the *mechanics* of moving already-formatted payloads
between ranks: per-rank FIFO mailboxes for point-to-point traffic and
driver-level collectives over per-rank contribution lists.  Everything
above the seam — buffering, batch coalescing, reliable seq/ack delivery,
message statistics — lives in :class:`~repro.runtime.ygm.YGMWorld` and
talks only to this interface.

Two transports implement it:

- :class:`~repro.runtime.transports.sim.SimCluster` — the deterministic,
  cost-modeled, fault-injectable simulation (the default; bit-identical
  to the pre-seam runtime),
- :class:`~repro.runtime.transports.local.LocalTransport` — a
  shared-memory backend whose mailboxes are safe for concurrent
  producers (rank sections running on the parallel executor), with no
  cost model.

Collectives are implemented here once; cost accounting is injected
through the ``_charge_collective`` / ``_charge_transfer`` hooks so the
simulated transport charges its alpha-beta model while the local
transport charges nothing.  Because the simulation is cooperative,
collectives take *per-rank contribution lists* and return per-rank
results — the driver (which plays the role of the SPMD program counter)
passes in what each rank would have contributed.  This keeps rank code
honest: a rank can only use its own slot of the result.

**Fault tolerance lives at this seam.**  Every transport supports:

- *fault injection* — an optional :class:`~repro.runtime.faults.FaultInjector`
  consulted on remote deliveries (drop/duplicate/delay/crash);
- *reliable delivery* — :class:`ReliableDelivery`, a per-``(src, dest)``
  seq/ack/retransmit/dedup state machine attached via
  :meth:`Transport.enable_reliability`.  It frames payloads as
  ``("rel", rel_seq, inner)`` and acks as ``("ack", (rel_seq, ...))``;
  the comm layer unwraps frames while draining;
- *failure marking* — :meth:`Transport.mark_failed` records ranks the
  supervisor has declared dead; traffic touching them is discarded
  (exactly what a dead MPI process does to its peers) and
  :meth:`Transport.failed_ranks` reports the union of marked and
  injector-crashed ranks so failure detection is uniform across
  backends.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Iterable, List, Sequence, Set, Tuple

from ...config import ClusterConfig
from ...errors import FaultToleranceError, RuntimeStateError
from ..instrumentation import FaultStats, MessageStats
from ..netmodel import CostLedger, NetworkModel

#: Reliable-delivery wire tags (shared with the YGM layer's other tags).
REL_TAG = "rel"       # ("rel", rel_seq, inner_payload)
ACK_TAG = "ack"       # ("ack", (rel_seq, ...))

#: Modeled size of one acked sequence number on the wire.
ACK_SEQ_BYTES = 4

#: Retransmit backoff is capped so a stuck message spins the barrier loop
#: a bounded number of rounds per retry instead of 2**attempts.
MAX_BACKOFF_TICKS = 32


class ReliableDelivery:
    """Transport-level reliable delivery: per-pair sequence numbers,
    positive acks, backoff retransmit, receiver dedup.

    The state machine is backend-agnostic; what differs per backend is
    *who calls what from where*:

    - ``send`` runs on the sending rank's execution context (the driver
      thread under sim, rank ``src``'s worker thread under the parallel
      executor) and only touches ``src``-owned send state;
    - ``on_receive`` / ``on_ack`` / ``flush_acks_for`` run while rank
      ``dest`` drains its own mailbox and only touch ``dest``-owned
      receive state — so under the parallel executor's ownership rules
      no additional locking is needed;
    - ``tick`` (the retransmit clock) and ``sync_fault_stats`` are
      driver-only, called between delivery rounds when no rank section
      is in flight.

    Fault counters are accumulated in per-rank cells and folded into the
    shared :class:`~repro.runtime.instrumentation.FaultStats` by absolute
    assignment at barriers (``sync_fault_stats``), because ``+=`` on a
    shared field would race under concurrent rank sections.
    """

    def __init__(self, transport: "Transport", retry_timeout: int = 4,
                 retry_backoff: float = 2.0, max_retries: int = 32,
                 fault_stats: FaultStats | None = None,
                 stats_for: Callable[[int], MessageStats] | None = None) -> None:
        self.transport = transport
        ws = transport.world_size
        self.world_size = ws
        self.retry_timeout = int(retry_timeout)
        self.retry_backoff = float(retry_backoff)
        self.max_retries = int(max_retries)
        self.fault_stats: FaultStats = (
            fault_stats if fault_stats is not None else FaultStats())
        self._stats_for = (stats_for if stats_for is not None
                           else (lambda rank: transport.stats))
        #: Delivery-round clock; advanced by :meth:`tick`.
        self.clock = 0
        #: Ranks the supervisor has excluded: sends to them are dropped
        #: without registering (nothing to await from a dead peer).
        self.dead: Set[int] = set()
        # _next[src][dest] -> next per-pair sequence number.
        self._next: List[List[int]] = [[0] * ws for _ in range(ws)]
        # _unacked[src][dest] -> {rel_seq: [payload, nbytes, attempts,
        #                                   sent_tick, first_tick]}
        self._unacked: List[List[Dict[int, list]]] = [
            [dict() for _ in range(ws)] for _ in range(ws)]
        # _seen[dest][src] -> delivered rel_seqs (receiver dedup).
        self._seen: List[List[set]] = [
            [set() for _ in range(ws)] for _ in range(ws)]
        # _ack_pending[receiver][sender] -> rel_seqs to ack this round.
        self._ack_pending: List[List[List[int]]] = [
            [[] for _ in range(ws)] for _ in range(ws)]
        # Per-rank counter cells (see class docstring).
        self._c_acks = [0] * ws
        self._c_retransmits = [0] * ws
        self._c_dups = [0] * ws
        self._c_exhausted = [0] * ws

    # -- send side (rank-confined to src) -------------------------------------

    def send(self, src: int, dest: int, payload: Any, nbytes: int) -> None:
        """Frame ``payload`` with the next ``(src, dest)`` sequence
        number, register it for retransmission, and deliver."""
        if dest in self.dead:
            return
        rel_seq = self._next[src][dest]
        self._next[src][dest] = rel_seq + 1
        self._unacked[src][dest][rel_seq] = [
            payload, nbytes, 0, self.clock, self.clock]
        self.transport.deliver(src, dest, (REL_TAG, rel_seq, payload))

    # -- receive side (rank-confined to dest) ---------------------------------

    def on_receive(self, dest: int, src: int, rel_seq: int) -> bool:
        """Record receipt of frame ``rel_seq``; returns True when the
        inner payload should be processed (first delivery) and False for
        duplicates.  Always queues a positive ack — the sender needs to
        stop retransmitting either way."""
        self._ack_pending[dest][src].append(rel_seq)
        seen = self._seen[dest][src]
        if rel_seq in seen:
            self._c_dups[dest] += 1
            return False
        seen.add(rel_seq)
        return True

    def on_ack(self, owner: int, peer: int, rel_seqs: Iterable[int]) -> None:
        """Retire acked sequence numbers for ``owner``'s sends to ``peer``."""
        unacked = self._unacked[owner][peer]
        for rel_seq in rel_seqs:
            unacked.pop(rel_seq, None)

    def flush_acks_for(self, receiver: int) -> None:
        """Ship ``receiver``'s accumulated acks, one batched control
        message per sender — the piggyback model: acks ride the next
        delivery round rather than each costing a latency."""
        row = self._ack_pending[receiver]
        transport = self.transport
        net = transport.net
        for sender in range(self.world_size):
            seqs = row[sender]
            if not seqs:
                continue
            row[sender] = []
            offnode = transport.is_offnode(receiver, sender)
            nbytes = ACK_SEQ_BYTES * len(seqs)
            self._stats_for(receiver).record("ack", nbytes, offnode)
            transport.ledger.charge(
                receiver, net.message_cost(nbytes, offnode))
            self._c_acks[receiver] += 1
            transport.deliver(receiver, sender, (ACK_TAG, tuple(seqs)))

    def flush_acks(self) -> None:
        """Driver-side variant: flush every receiver's pending acks."""
        for receiver in range(self.world_size):
            self.flush_acks_for(receiver)

    # -- driver-side clock -----------------------------------------------------

    def tick(self) -> None:
        """Advance the delivery-round clock and retransmit unacked
        messages whose backoff window expired.  Raises
        :class:`~repro.errors.FaultToleranceError` past the retry
        budget.  Driver-only: no rank section may be in flight."""
        self.clock += 1
        transport = self.transport
        for src in range(self.world_size):
            row = self._unacked[src]
            for dest in range(self.world_size):
                unacked = row[dest]
                if not unacked:
                    continue
                offnode = transport.is_offnode(src, dest)
                for rel_seq, entry in list(unacked.items()):
                    payload, nbytes, attempts, sent_tick, _first = entry
                    window = min(
                        self.retry_timeout * (self.retry_backoff ** attempts),
                        MAX_BACKOFF_TICKS)
                    if self.clock - sent_tick < window:
                        continue
                    if attempts >= self.max_retries:
                        self._c_exhausted[src] += 1
                        self.sync_fault_stats()
                        raise FaultToleranceError(
                            f"message {src}->{dest} unacked after "
                            f"{attempts} retransmits; network unrecoverable",
                            src=src, dest=dest, attempts=attempts)
                    entry[2] = attempts + 1
                    entry[3] = self.clock
                    self._c_retransmits[src] += 1
                    self._stats_for(src).record("retransmit", nbytes, offnode)
                    transport.ledger.charge(
                        src, transport.net.message_cost(nbytes, offnode))
                    transport.deliver(src, dest, (REL_TAG, rel_seq, payload))

    def pending(self) -> bool:
        return any(d for row in self._unacked for d in row)

    def overdue_dests(self, age: int) -> Set[int]:
        """Destination ranks with at least one frame unacked for
        ``age`` or more ticks since it was *first* sent — the raw signal
        the comm layer's failure detector combines with last-progress
        tracking."""
        stuck: Set[int] = set()
        threshold = self.clock - age
        for src in range(self.world_size):
            for dest, unacked in enumerate(self._unacked[src]):
                if dest in stuck or not unacked:
                    continue
                for entry in unacked.values():
                    if entry[4] <= threshold:
                        stuck.add(dest)
                        break
        return stuck

    # -- failure marking / recovery -------------------------------------------

    def mark_dead(self, ranks: Iterable[int]) -> None:
        """Purge state involving ``ranks`` and drop future sends to them
        (degraded mode: nothing is owed to or expected from a dead peer).
        ``_seen`` and ``_next`` survive so a revived rank's new frames
        are not mistaken for replays of old ones."""
        for r in ranks:
            self.dead.add(r)
            for other in range(self.world_size):
                self._unacked[r][other].clear()
                self._unacked[other][r].clear()
                self._ack_pending[r][other].clear()
                self._ack_pending[other][r].clear()

    def revive(self, ranks: Iterable[int] | None = None) -> None:
        if ranks is None:
            self.dead.clear()
        else:
            self.dead.difference_update(ranks)

    def reset(self) -> None:
        """Discard all in-flight bookkeeping (crash-recovery reset: the
        driver replays from a checkpoint, so nothing from the failed
        epoch may be retransmitted or deduplicated against)."""
        for s in range(self.world_size):
            for d in range(self.world_size):
                self._next[s][d] = 0
                self._unacked[s][d].clear()
                self._seen[s][d].clear()
                self._ack_pending[s][d].clear()

    def sync_fault_stats(self) -> None:
        """Fold the per-rank counter cells into the shared
        :class:`FaultStats` by absolute assignment (idempotent, safe to
        repeat at every barrier).  Driver-only."""
        fs = self.fault_stats
        fs.acks_sent = sum(self._c_acks)
        fs.retransmits = sum(self._c_retransmits)
        fs.duplicates_suppressed = sum(self._c_dups)
        fs.retry_budget_exhausted = sum(self._c_exhausted)


class Transport:
    """Base point-to-point + collectives substrate.

    Subclasses provide delivery semantics (:meth:`deliver`) and the cost
    hooks; the deque mailboxes, drain interface, and collective logic
    are shared.  Every subclass exposes the same attributes the comm
    layer relies on: ``config``, ``world_size``, ``net``, ``ledger``,
    ``stats`` (the sink the YGM layer records into), and ``injector``
    (``None`` unless the transport supports fault injection).
    """

    #: Attached :class:`repro.analysis.race.RaceSanitizer` under
    #: ``REPRO_SANITIZE=race``; ``None`` otherwise.  Kept as a class
    #: attribute so the off mode costs nothing per instance and hooks
    #: reduce to a single ``is None`` test.
    race = None

    def __init__(self, config: ClusterConfig, net: NetworkModel | None,
                 ledger: CostLedger) -> None:
        self.config = config
        self.net = net or NetworkModel()
        self.world_size = config.world_size
        self.ledger = ledger
        self.stats = MessageStats()
        self.injector = None
        #: Reliable-delivery layer; None until
        #: :meth:`enable_reliability` attaches one.
        self.reliability: ReliableDelivery | None = None
        #: Ranks the supervisor has declared failed (degraded mode);
        #: traffic touching them is discarded.  Kept distinct from the
        #: injector's crash set: injector crashes are the *simulated
        #: cause*, marks are the *runtime's verdict* — a backend with no
        #: injector still marks ranks it detects as dead.
        self.marked_failed: Set[int] = set()
        #: Collective invocations (allreduce/gather/allgather/bcast/
        #: alltoallv) — driven by the same driver code on every backend,
        #: so the ``transport.collectives`` metric is conformant across
        #: sim and parallel.
        self.collectives = 0
        self._mailboxes: List[Deque[Tuple[int, Any]]] = [
            deque() for _ in range(self.world_size)]
        self._alive = True

    # -- lifecycle -----------------------------------------------------------

    def attach_race(self, race) -> None:
        """Attach a race sanitizer (``REPRO_SANITIZE=race``).  Subclasses
        with internal locks additionally swap them for tracked proxies so
        lock-ordered accesses carry the lock in their lockset."""
        self.race = race

    def shutdown(self) -> None:
        self._alive = False

    def _check_alive(self) -> None:
        if not self._alive:
            raise RuntimeStateError("cluster has been shut down")

    # -- topology ------------------------------------------------------------

    def node_of(self, rank: int) -> int:
        return self.config.node_of(rank)

    def is_offnode(self, src: int, dest: int) -> bool:
        return self.node_of(src) != self.node_of(dest)

    # -- point-to-point transport ---------------------------------------------

    def deliver(self, src: int, dest: int, item: Any,
                fault_exempt: bool = False) -> None:
        """Enqueue ``item`` into ``dest``'s mailbox (already-flushed
        data).  Subclasses may perturb remote deliveries (fault
        injection); the base form is an exact FIFO append.  Traffic
        touching a marked-failed rank is discarded on every transport."""
        self._check_alive()
        if not 0 <= dest < self.world_size:
            raise RuntimeStateError(f"destination rank {dest} out of range")
        if self.marked_failed and (src in self.marked_failed
                                   or dest in self.marked_failed):
            return
        self._mailboxes[dest].append((src, item))

    def self_append(self, rank: int) -> Callable[[Tuple[int, Any]], None]:
        """Bound append onto ``rank``'s own mailbox — the comm layer's
        fast path for local (``src == dest``) deliveries emitted from
        rank context, where none of :meth:`deliver`'s checks can fire.
        The returned callable takes the full ``(src, payload)`` entry."""
        return self._mailboxes[rank].append

    def release_due_faults(self) -> int:
        """Advance injected-delay clocks one tick; returns how many
        held messages were released (0 on transports without faults)."""
        return 0

    # -- reliability and failure marking ---------------------------------------

    def enable_reliability(self, retry_timeout: int = 4,
                           retry_backoff: float = 2.0, max_retries: int = 32,
                           fault_stats: FaultStats | None = None,
                           stats_for: Callable[[int], MessageStats] | None = None,
                           ) -> ReliableDelivery:
        """Attach (and return) a :class:`ReliableDelivery` layer.  The
        comm layer calls this when constructed with ``reliable=True``;
        the transport holds the reference so failure marking and repair
        stay coherent with the reliability state."""
        self.reliability = ReliableDelivery(
            self, retry_timeout=retry_timeout, retry_backoff=retry_backoff,
            max_retries=max_retries, fault_stats=fault_stats,
            stats_for=stats_for)
        return self.reliability

    def mark_failed(self, ranks: Iterable[int]) -> None:
        """Record ``ranks`` as dead: their traffic is discarded and the
        reliability layer (when attached) stops awaiting their acks."""
        ranks = set(ranks)
        self.marked_failed |= ranks
        if self.reliability is not None:
            self.reliability.mark_dead(ranks)

    def failed_ranks(self) -> Set[int]:
        """The union of supervisor-marked and injector-crashed ranks —
        the uniform failure signal every backend reports."""
        failed = set(self.marked_failed)
        if self.injector is not None:
            failed |= self.injector.crashed
        return failed

    def repair_all(self) -> None:
        """Re-admit every failed rank: clear marks, revive the
        reliability layer's dead set, and repair injector crashes."""
        self.marked_failed.clear()
        if self.reliability is not None:
            self.reliability.revive()
        if self.injector is not None:
            self.injector.repair_all()

    def clear_mailboxes(self) -> None:
        """Discard all undelivered traffic (crash-recovery reset).
        Driver-only: under the race sanitizer this writes every mailbox
        cell, so a reset overlapping a rank section's drain is reported
        as the race it would be."""
        race = self.race
        if race is not None:
            for rank in range(self.world_size):
                race.access(("mailbox", rank), write=True)
        for mb in self._mailboxes:
            mb.clear()

    def mailbox_len(self, rank: int) -> int:
        return len(self._mailboxes[rank])

    def mailbox_empty(self, rank: int) -> bool:
        return not self._mailboxes[rank]

    def all_quiescent(self) -> bool:
        return all(not mb for mb in self._mailboxes)

    def drain_one(self, rank: int) -> Tuple[int, Any] | None:
        """Pop the oldest pending item for ``rank`` or None."""
        mb = self._mailboxes[rank]
        return mb.popleft() if mb else None

    def pending_total(self) -> int:
        return sum(len(mb) for mb in self._mailboxes)

    # -- cost hooks ------------------------------------------------------------

    def _charge_collective(self, item_bytes: int) -> None:
        """Charge every rank for one collective of ``item_bytes`` per
        rank (no-op unless the transport models costs)."""

    def _charge_transfer(self, src: int, dest: int, nbytes: int) -> None:
        """Charge ``src`` for one bulk point-to-point transfer inside a
        collective (no-op unless the transport models costs)."""

    # -- collectives -----------------------------------------------------------

    def allreduce(
        self, contributions: Sequence[Any],
        op: Callable[[Any, Any], Any] | None = None,
        item_bytes: int = 8,
    ) -> List[Any]:
        """Reduce per-rank contributions with ``op`` (default sum); every
        rank receives the result."""
        self._check_alive()
        self.collectives += 1
        self._require_full(contributions)
        if op is None:
            total: Any = 0
            for c in contributions:
                total = total + c
        else:
            it = iter(contributions)
            total = next(it)
            for c in it:
                total = op(total, c)
        self._charge_collective(item_bytes)
        return [total] * self.world_size

    def allreduce_sum(self, contributions: Sequence[float]) -> float:
        """Convenience: scalar sum-allreduce, returns the single value."""
        return self.allreduce(list(contributions))[0]

    def gather(self, contributions: Sequence[Any], root: int = 0,
               item_bytes: int = 8) -> List[List[Any] | None]:
        """Root receives the list of contributions; other ranks get None.

        Like every collective here, the return value is *per-rank*:
        ``result[root]`` is the contribution list, every other slot is
        ``None`` — so rank code cannot accidentally read data that only
        the root owns (MPI_Gather's actual contract).
        """
        self._check_alive()
        self.collectives += 1
        if not 0 <= root < self.world_size:
            raise RuntimeStateError(f"root rank {root} out of range")
        self._require_full(contributions)
        self._charge_collective(item_bytes)
        gathered = list(contributions)
        return [gathered if r == root else None for r in range(self.world_size)]

    def allgather(self, contributions: Sequence[Any],
                  item_bytes: int = 8) -> List[List[Any]]:
        self._check_alive()
        self.collectives += 1
        self._require_full(contributions)
        self._charge_collective(item_bytes * self.world_size)
        gathered = list(contributions)
        return [list(gathered) for _ in range(self.world_size)]

    def bcast(self, value: Any, root: int = 0, item_bytes: int = 8) -> List[Any]:
        self._check_alive()
        self.collectives += 1
        if not 0 <= root < self.world_size:
            raise RuntimeStateError(f"root rank {root} out of range")
        self._charge_collective(item_bytes)
        return [value] * self.world_size

    def alltoallv(self, send_lists: Sequence[Sequence[Any]],
                  item_bytes: int = 8) -> List[List[Any]]:
        """``send_lists[src][dest]`` -> per-dest receive lists.

        Used by bulk redistribution steps (e.g. gathering a distributed
        graph); charges bandwidth for every off-diagonal transfer.
        """
        self._check_alive()
        self.collectives += 1
        self._require_full(send_lists)
        recv: List[List[Any]] = [[] for _ in range(self.world_size)]
        for src in range(self.world_size):
            row = send_lists[src]
            if len(row) != self.world_size:
                raise RuntimeStateError(
                    f"alltoallv: rank {src} provided {len(row)} destination lists, "
                    f"expected {self.world_size}"
                )
            for dest in range(self.world_size):
                payload = row[dest]
                recv[dest].extend(payload)
                if src != dest and payload:
                    self._charge_transfer(src, dest, item_bytes * len(payload))
        return recv

    def _require_full(self, contributions: Sequence[Any]) -> None:
        if len(contributions) != self.world_size:
            raise RuntimeStateError(
                f"collective needs one contribution per rank "
                f"({self.world_size}), got {len(contributions)}"
            )
