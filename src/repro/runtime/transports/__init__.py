"""Transport backends for the YGM comm layer.

The :class:`~repro.runtime.transports.base.Transport` protocol is the
seam between the comm layer (buffering, coalescing, reliability, stats —
:mod:`repro.runtime.ygm`) and the machinery that moves payloads between
ranks:

- :mod:`.sim` — :class:`SimCluster`, the deterministic cost-modeled
  fault-injectable simulation (default backend),
- :mod:`.local` — :class:`LocalTransport`, thread-safe shared-memory
  mailboxes for the parallel executor,
- :mod:`.process` — :class:`ProcessTransport`, per-rank worker
  processes with pickled cross-worker frames and the dataset in
  ``multiprocessing.shared_memory`` segments.
"""

from .base import Transport
from .local import LocalTransport
from .process import (ProcessTransport, ProcessWorld, SharedArrayOwner,
                      SharedArraySpec, attach_shared_array)
from .sim import SimCluster

__all__ = [
    "Transport",
    "LocalTransport",
    "SimCluster",
    "ProcessTransport",
    "ProcessWorld",
    "SharedArrayOwner",
    "SharedArraySpec",
    "attach_shared_array",
]
