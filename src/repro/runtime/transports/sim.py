"""The deterministic, single-process simulated MPI transport.

This is the substitution for the paper's MPI (MVAPICH2) layer: per-rank
FIFO mailboxes for point-to-point traffic and driver-level collectives
(allreduce / gather / bcast / alltoallv) with modeled costs.  The
higher-level YGM layer (:mod:`repro.runtime.ygm`) builds its buffered
asynchronous RPC on these mailboxes, exactly as the real YGM builds on
MPI.

:class:`SimCluster` is the :class:`~repro.runtime.transports.base.Transport`
that preserves the pre-seam runtime bit-for-bit: deterministic delivery
order, the alpha-beta/compute cost ledger, and optional fault injection
(:mod:`repro.runtime.faults`).  It remains importable from its historic
home, :mod:`repro.runtime.simmpi`.
"""

from __future__ import annotations

from typing import Any

from ...config import ClusterConfig
from ...errors import RuntimeStateError
from ..faults import FaultInjector
from ..netmodel import CostLedger, NetworkModel
from .base import Transport


class SimCluster(Transport):
    """World state shared by all simulated ranks.

    Parameters
    ----------
    config:
        Node/process shape (``nodes`` x ``procs_per_node``).
    net:
        Cost-model constants; defaults to Omni-Path-class numbers.
    injector:
        Optional :class:`~repro.runtime.faults.FaultInjector`; when set,
        remote deliveries consult it for drop/duplicate/delay decisions
        and traffic touching a crashed rank is discarded.
    """

    def __init__(self, config: ClusterConfig, net: NetworkModel | None = None,
                 injector: FaultInjector | None = None) -> None:
        super().__init__(config, net,
                         CostLedger(world_size=config.world_size))
        self.injector = injector

    # -- point-to-point transport ---------------------------------------------

    def deliver(self, src: int, dest: int, item: Any,
                fault_exempt: bool = False) -> None:
        """Enqueue ``item`` into ``dest``'s mailbox (already-flushed data).

        With a fault injector attached, remote (``src != dest``)
        deliveries may be dropped, duplicated, or delayed, and any
        traffic from or to a crashed rank is discarded — exactly what a
        dead MPI process does to its peers.  ``fault_exempt`` bypasses
        the injector (used when releasing already-injected delayed
        copies, which must not be re-perturbed).
        """
        self._check_alive()
        if not 0 <= dest < self.world_size:
            raise RuntimeStateError(f"destination rank {dest} out of range")
        if self.marked_failed and (src in self.marked_failed
                                   or dest in self.marked_failed):
            return
        inj = self.injector
        if inj is not None and not fault_exempt:
            if inj.is_crashed(src) or inj.is_crashed(dest):
                inj.stats.crash_dropped += 1
                return
            if src != dest:
                for delay in inj.on_deliver(src, dest):
                    if delay == 0:
                        self._mailboxes[dest].append((src, item))
                    else:
                        inj.hold(delay, src, dest, item)
                return
        self._mailboxes[dest].append((src, item))

    def release_due_faults(self) -> int:
        """Advance the injector's delay clock one tick and deliver any
        now-due delayed messages; returns how many were released."""
        inj = self.injector
        if inj is None:
            return 0
        due = inj.tick()
        for src, dest, item in due:
            if inj.is_crashed(src) or inj.is_crashed(dest):
                inj.stats.crash_dropped += 1
                continue
            if self.marked_failed and (src in self.marked_failed
                                       or dest in self.marked_failed):
                continue
            self._mailboxes[dest].append((src, item))
        return len(due)

    # -- cost hooks ------------------------------------------------------------
    # Each collective charges a log2(P)-depth tree of alpha+beta*size to
    # every rank, matching the usual MPI collective cost models.

    def _charge_collective(self, item_bytes: int) -> None:
        depth = max(1, (self.world_size - 1).bit_length())
        cost = depth * (self.net.alpha + self.net.beta * item_bytes)
        for r in range(self.world_size):
            self.ledger.charge(r, cost)

    def _charge_transfer(self, src: int, dest: int, nbytes: int) -> None:
        offnode = self.is_offnode(src, dest)
        cost = self.net.message_cost(nbytes, offnode)
        self.ledger.charge(src, cost + self.net.flush_cost(offnode))
