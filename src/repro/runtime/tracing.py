"""Execution tracing — Section 7's ask, over the metrics registry.

The paper's first future-work item: "further performance profiling is
required to identify bottlenecks, such as finding how much the
computation or communication is heavier than the other and
understanding communication patterns deeply."  :class:`RuntimeTracer`
answers those questions per superstep:

- per-superstep duration and which phase it belonged to,
- per-rank load imbalance at each barrier,
- message-type timelines (how Type 2+ traffic decays as the graph
  converges),
- fault/recovery event timelines.

The tracer is a *consumer* of the backend-agnostic metrics registry
(:mod:`repro.runtime.metrics`): at every barrier it reads the
``messages.sent.*`` / ``messages.bytes.*`` / ``faults.*`` counters the
comm layer just published and records the deltas, so it works
identically under the sim and parallel backends.  The sim cost model
remains an enrichment, not the data source: superstep durations and
imbalance come from the transport's ledger, which reports zero
durations and perfect balance under the parallel backend's
:class:`~repro.runtime.netmodel.NullLedger`.

Attach with :func:`attach_tracer` before ``DNND.build()``; attaching
twice returns the existing tracer instead of double-wrapping the
barrier (each extra wrap used to double-count every superstep).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .metrics import MetricsRegistry
from .transports.base import Transport
from .ygm import YGMWorld


@dataclass
class BarrierRecord:
    """One superstep's snapshot."""

    index: int
    phase: str
    duration: float
    imbalance: float
    messages_delta: Dict[str, int] = field(default_factory=dict)
    bytes_delta: Dict[str, int] = field(default_factory=dict)
    fault_delta: Dict[str, int] = field(default_factory=dict)
    """Fault/recovery events (drops, retransmits, dedups, ...) that
    occurred in this superstep window — empty in fault-free runs."""


class RuntimeTracer:
    """Collects one :class:`BarrierRecord` per barrier.

    Wraps ``world.barrier`` — create via :func:`attach_tracer`.
    """

    def __init__(self, world: YGMWorld) -> None:
        self.world = world
        self.records: List[BarrierRecord] = []
        self._last_counts: Dict[str, int] = {}
        self._last_bytes: Dict[str, int] = {}
        self._last_faults: Dict[str, int] = {}

    # -- capture -----------------------------------------------------------

    def _on_barrier(self, phase: str, duration: float, imbalance: float) -> None:
        # The comm layer published its aggregates into the registry as
        # part of the barrier that just returned; the per-superstep
        # window is the counter delta since the previous barrier.
        metrics = self.world.metrics
        counts = metrics.counters_with_prefix("messages.sent.")
        nbytes = metrics.counters_with_prefix("messages.bytes.")
        faults = metrics.counters_with_prefix("faults.")
        record = BarrierRecord(
            index=len(self.records),
            phase=phase,
            duration=duration,
            imbalance=imbalance,
            messages_delta={
                t: counts[t] - self._last_counts.get(t, 0) for t in counts
                if counts[t] != self._last_counts.get(t, 0)
            },
            bytes_delta={
                t: nbytes[t] - self._last_bytes.get(t, 0) for t in nbytes
                if nbytes[t] != self._last_bytes.get(t, 0)
            },
            fault_delta={
                k: v - self._last_faults.get(k, 0) for k, v in faults.items()
                if v != self._last_faults.get(k, 0)
            },
        )
        self._last_counts = counts
        self._last_bytes = nbytes
        self._last_faults = faults
        self.records.append(record)

    # -- queries ------------------------------------------------------------

    def total_supersteps(self) -> int:
        return len(self.records)

    def phase_durations(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for r in self.records:
            out[r.phase] = out.get(r.phase, 0.0) + r.duration
        return out

    def peak_imbalance(self) -> float:
        return max((r.imbalance for r in self.records), default=1.0)

    def message_timeline(self, msg_type: str) -> List[int]:
        """Messages of ``msg_type`` sent in each superstep window."""
        return [r.messages_delta.get(msg_type, 0) for r in self.records]

    def fault_timeline(self, event: str) -> List[int]:
        """Fault/recovery events of one kind (e.g. ``"retransmits"``)
        per superstep window."""
        return [r.fault_delta.get(event, 0) for r in self.records]

    def total_fault_events(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for r in self.records:
            for k, v in r.fault_delta.items():
                out[k] = out.get(k, 0) + v
        return out

    def busiest_supersteps(self, top: int = 5) -> List[BarrierRecord]:
        return sorted(self.records, key=lambda r: -r.duration)[:top]

    def report(self) -> str:
        """Human-readable bottleneck summary."""
        # Imported here: repro.eval pulls in the algorithm stack, which
        # itself imports repro.runtime — a module-level import would be
        # circular.
        from ..eval.tables import ascii_table

        durations = self.phase_durations()
        total = sum(durations.values()) or 1.0
        rows = [
            [phase, f"{secs:.6f}", f"{secs / total:.1%}"]
            for phase, secs in sorted(durations.items(), key=lambda t: -t[1])
        ]
        out = [ascii_table(["phase", "sim seconds", "share"], rows,
                           title="phase breakdown")]
        busiest = self.busiest_supersteps(3)
        rows = [[r.index, r.phase, f"{r.duration:.6f}", f"{r.imbalance:.2f}",
                 sum(r.messages_delta.values())]
                for r in busiest]
        out.append(ascii_table(
            ["step", "phase", "duration", "imbalance", "messages"],
            rows, title="busiest supersteps"))
        faults = self.total_fault_events()
        if faults:
            rows = [[event, count] for event, count in sorted(faults.items())]
            out.append(ascii_table(["event", "count"], rows,
                                   title="fault / recovery events"))
        return "\n\n".join(out)


def attach_tracer(world: YGMWorld) -> RuntimeTracer:
    """Instrument ``world.barrier`` to record a trace; returns the tracer.

    The wrapper preserves barrier semantics exactly; it only observes.
    Idempotent: calling it again on the same world returns the tracer
    already attached — wrapping the (already wrapped) barrier a second
    time would fire ``_on_barrier`` twice per superstep and double every
    record.  A world whose metrics are disabled gets a live registry
    first: the tracer reads its counters, so it needs a real one.
    """
    existing = getattr(world, "_tracer", None)
    if existing is not None:
        return existing
    if not world.metrics.enabled:
        world.metrics = MetricsRegistry()
    tracer = RuntimeTracer(world)
    original_barrier = world.barrier
    cluster: Transport = world.cluster

    def traced_barrier(phase: str | None = None) -> float:
        effective_phase = phase or world._phase
        imbalance = cluster.ledger.imbalance()
        duration = original_barrier(phase)
        tracer._on_barrier(effective_phase, duration, imbalance)
        return duration

    world.barrier = traced_barrier  # type: ignore[method-assign]
    world._tracer = tracer  # type: ignore[attr-defined]
    return tracer
