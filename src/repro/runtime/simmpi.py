"""A deterministic, single-process simulated MPI cluster.

This is the substitution for the paper's MPI (MVAPICH2) layer: per-rank
FIFO mailboxes for point-to-point traffic and driver-level collectives
(allreduce / gather / bcast / alltoallv) with modeled costs.  The
higher-level YGM layer (:mod:`.ygm`) builds its buffered asynchronous
RPC on these mailboxes, exactly as the real YGM builds on MPI.

Because the simulation is cooperative and single-threaded, collectives
take *per-rank contribution lists* and return per-rank results — the
driver (which plays the role of the SPMD program counter) passes in what
each rank would have contributed.  This keeps rank code honest: a rank
can only use its own slot of the result.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Sequence, Tuple

from ..config import ClusterConfig
from ..errors import RuntimeStateError
from .faults import FaultInjector
from .instrumentation import MessageStats
from .netmodel import CostLedger, NetworkModel


class SimCluster:
    """World state shared by all simulated ranks.

    Parameters
    ----------
    config:
        Node/process shape (``nodes`` x ``procs_per_node``).
    net:
        Cost-model constants; defaults to Omni-Path-class numbers.
    injector:
        Optional :class:`~repro.runtime.faults.FaultInjector`; when set,
        remote deliveries consult it for drop/duplicate/delay decisions
        and traffic touching a crashed rank is discarded.
    """

    def __init__(self, config: ClusterConfig, net: NetworkModel | None = None,
                 injector: FaultInjector | None = None) -> None:
        self.config = config
        self.net = net or NetworkModel()
        self.world_size = config.world_size
        self.ledger = CostLedger(world_size=self.world_size)
        self.stats = MessageStats()
        self.injector = injector
        self._mailboxes: List[Deque[Tuple[int, Any]]] = [deque() for _ in range(self.world_size)]
        self._alive = True

    # -- lifecycle -----------------------------------------------------------

    def shutdown(self) -> None:
        self._alive = False

    def _check_alive(self) -> None:
        if not self._alive:
            raise RuntimeStateError("cluster has been shut down")

    # -- topology ------------------------------------------------------------

    def node_of(self, rank: int) -> int:
        return self.config.node_of(rank)

    def is_offnode(self, src: int, dest: int) -> bool:
        return self.node_of(src) != self.node_of(dest)

    # -- point-to-point transport ---------------------------------------------

    def deliver(self, src: int, dest: int, item: Any,
                fault_exempt: bool = False) -> None:
        """Enqueue ``item`` into ``dest``'s mailbox (already-flushed data).

        With a fault injector attached, remote (``src != dest``)
        deliveries may be dropped, duplicated, or delayed, and any
        traffic from or to a crashed rank is discarded — exactly what a
        dead MPI process does to its peers.  ``fault_exempt`` bypasses
        the injector (used when releasing already-injected delayed
        copies, which must not be re-perturbed).
        """
        self._check_alive()
        if not 0 <= dest < self.world_size:
            raise RuntimeStateError(f"destination rank {dest} out of range")
        inj = self.injector
        if inj is not None and not fault_exempt:
            if inj.is_crashed(src) or inj.is_crashed(dest):
                inj.stats.crash_dropped += 1
                return
            if src != dest:
                for delay in inj.on_deliver(src, dest):
                    if delay == 0:
                        self._mailboxes[dest].append((src, item))
                    else:
                        inj.hold(delay, src, dest, item)
                return
        self._mailboxes[dest].append((src, item))

    def release_due_faults(self) -> int:
        """Advance the injector's delay clock one tick and deliver any
        now-due delayed messages; returns how many were released."""
        inj = self.injector
        if inj is None:
            return 0
        due = inj.tick()
        for src, dest, item in due:
            if inj.is_crashed(src) or inj.is_crashed(dest):
                inj.stats.crash_dropped += 1
                continue
            self._mailboxes[dest].append((src, item))
        return len(due)

    def clear_mailboxes(self) -> None:
        """Discard all undelivered traffic (crash-recovery reset)."""
        for mb in self._mailboxes:
            mb.clear()

    def mailbox_empty(self, rank: int) -> bool:
        return not self._mailboxes[rank]

    def all_quiescent(self) -> bool:
        return all(not mb for mb in self._mailboxes)

    def drain_one(self, rank: int) -> Tuple[int, Any] | None:
        """Pop the oldest pending item for ``rank`` or None."""
        mb = self._mailboxes[rank]
        return mb.popleft() if mb else None

    def pending_total(self) -> int:
        return sum(len(mb) for mb in self._mailboxes)

    # -- collectives -----------------------------------------------------------
    # Each charges a log2(P)-depth tree of alpha+beta*size to every rank,
    # matching the usual MPI collective cost models.

    def _charge_collective(self, item_bytes: int) -> None:
        depth = max(1, (self.world_size - 1).bit_length())
        cost = depth * (self.net.alpha + self.net.beta * item_bytes)
        for r in range(self.world_size):
            self.ledger.charge(r, cost)

    def allreduce(
        self, contributions: Sequence[Any], op: Callable[[Any, Any], Any] | None = None,
        item_bytes: int = 8,
    ) -> List[Any]:
        """Reduce per-rank contributions with ``op`` (default sum); every
        rank receives the result."""
        self._check_alive()
        self._require_full(contributions)
        if op is None:
            total: Any = 0
            for c in contributions:
                total = total + c
        else:
            it = iter(contributions)
            total = next(it)
            for c in it:
                total = op(total, c)
        self._charge_collective(item_bytes)
        return [total] * self.world_size

    def allreduce_sum(self, contributions: Sequence[float]) -> float:
        """Convenience: scalar sum-allreduce, returns the single value."""
        return self.allreduce(list(contributions))[0]

    def gather(self, contributions: Sequence[Any], root: int = 0,
               item_bytes: int = 8) -> List[List[Any] | None]:
        """Root receives the list of contributions; other ranks get None.

        Like every collective here, the return value is *per-rank*:
        ``result[root]`` is the contribution list, every other slot is
        ``None`` — so rank code cannot accidentally read data that only
        the root owns (MPI_Gather's actual contract).
        """
        self._check_alive()
        if not 0 <= root < self.world_size:
            raise RuntimeStateError(f"root rank {root} out of range")
        self._require_full(contributions)
        self._charge_collective(item_bytes)
        gathered = list(contributions)
        return [gathered if r == root else None for r in range(self.world_size)]

    def allgather(self, contributions: Sequence[Any], item_bytes: int = 8) -> List[List[Any]]:
        self._check_alive()
        self._require_full(contributions)
        self._charge_collective(item_bytes * self.world_size)
        gathered = list(contributions)
        return [list(gathered) for _ in range(self.world_size)]

    def bcast(self, value: Any, root: int = 0, item_bytes: int = 8) -> List[Any]:
        self._check_alive()
        if not 0 <= root < self.world_size:
            raise RuntimeStateError(f"root rank {root} out of range")
        self._charge_collective(item_bytes)
        return [value] * self.world_size

    def alltoallv(self, send_lists: Sequence[Sequence[Any]],
                  item_bytes: int = 8) -> List[List[Any]]:
        """``send_lists[src][dest]`` -> per-dest receive lists.

        Used by bulk redistribution steps (e.g. gathering a distributed
        graph); charges bandwidth for every off-diagonal transfer.
        """
        self._check_alive()
        self._require_full(send_lists)
        recv: List[List[Any]] = [[] for _ in range(self.world_size)]
        for src in range(self.world_size):
            row = send_lists[src]
            if len(row) != self.world_size:
                raise RuntimeStateError(
                    f"alltoallv: rank {src} provided {len(row)} destination lists, "
                    f"expected {self.world_size}"
                )
            for dest in range(self.world_size):
                payload = row[dest]
                recv[dest].extend(payload)
                if src != dest and payload:
                    nbytes = item_bytes * len(payload)
                    cost = self.net.message_cost(nbytes, self.is_offnode(src, dest))
                    self.ledger.charge(src, cost + self.net.flush_cost(self.is_offnode(src, dest)))
        return recv

    def _require_full(self, contributions: Sequence[Any]) -> None:
        if len(contributions) != self.world_size:
            raise RuntimeStateError(
                f"collective needs one contribution per rank "
                f"({self.world_size}), got {len(contributions)}"
            )
