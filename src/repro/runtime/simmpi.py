"""Backwards-compatible home of :class:`SimCluster`.

The simulated MPI cluster moved behind the Transport seam in
:mod:`repro.runtime.transports` (``transports/sim.py``); this module
remains so existing imports — ``from repro.runtime.simmpi import
SimCluster`` — keep working unchanged.  New code should import from
:mod:`repro.runtime.transports` (or :mod:`repro.runtime`), which also
exposes the :class:`~repro.runtime.transports.base.Transport` protocol
and the shared-memory :class:`~repro.runtime.transports.local.LocalTransport`.
"""

from __future__ import annotations

from .transports.sim import SimCluster

__all__ = ["SimCluster"]
