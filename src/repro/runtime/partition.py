"""Vertex-to-rank partitioning.

Section 4 of the paper: "DNND distributes a k-NNG G and an input dataset
V equally among all MPI ranks based on the hash values of the vertex
IDs. Each vertex (feature vector) v and the corresponding neighbor list
G_v are located in the same MPI rank."

:class:`HashPartitioner` implements exactly that with a splitmix64-style
integer hash (deterministic across runs and platforms — Python's builtin
``hash`` is salted, so it is unsuitable).  :class:`BlockPartitioner` is
a contiguous-range alternative used in tests and the skew ablation.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..errors import PartitionError

_MASK64 = (1 << 64) - 1


def splitmix64(x: int) -> int:
    """SplitMix64 finalizer — a fast, well-mixed 64-bit integer hash."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) & _MASK64


def splitmix64_array(ids: np.ndarray) -> np.ndarray:
    """Vectorized SplitMix64 over an array of non-negative int ids."""
    x = ids.astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        x += np.uint64(0x9E3779B97F4A7C15)
        x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        x = x ^ (x >> np.uint64(31))
    return x


class Partitioner:
    """Maps global vertex ids to owning ranks and local indices."""

    def __init__(self, n: int, world_size: int) -> None:
        if n <= 0:
            raise PartitionError(f"dataset size must be positive, got {n}")
        if world_size <= 0:
            raise PartitionError(f"world_size must be positive, got {world_size}")
        self.n = int(n)
        self.world_size = int(world_size)

    # subclasses implement owner / owner_array
    def owner(self, v: int) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def owner_array(self, ids: np.ndarray) -> np.ndarray:
        return np.array([self.owner(int(v)) for v in ids], dtype=np.int64)

    def local_ids(self, rank: int) -> np.ndarray:
        """Global ids owned by ``rank``, ascending (cached)."""
        cache = getattr(self, "_local_cache", None)
        if cache is None:
            owners = self.owner_array(np.arange(self.n, dtype=np.int64))
            cache = {
                r: np.flatnonzero(owners == r).astype(np.int64)
                for r in range(self.world_size)
            }
            self._local_cache = cache
        if not 0 <= rank < self.world_size:
            raise PartitionError(f"rank {rank} out of range [0, {self.world_size})")
        return cache[rank]

    def local_index_map(self, rank: int) -> Dict[int, int]:
        """global id -> local row index on ``rank``."""
        ids = self.local_ids(rank)
        return {int(g): i for i, g in enumerate(ids)}

    def counts(self) -> List[int]:
        return [len(self.local_ids(r)) for r in range(self.world_size)]

    def max_imbalance(self) -> float:
        """max/mean partition size — hash partitioning keeps this ~1."""
        counts = self.counts()
        mean = sum(counts) / len(counts)
        return max(counts) / mean if mean else 1.0


class HashPartitioner(Partitioner):
    """Owner = splitmix64(id) mod world_size (the paper's scheme)."""

    def owner(self, v: int) -> int:
        if not 0 <= v < self.n:
            raise PartitionError(f"vertex id {v} out of range [0, {self.n})")
        return int(splitmix64(int(v)) % self.world_size)

    def owner_array(self, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= self.n):
            raise PartitionError("vertex id out of range in owner_array")
        return (splitmix64_array(ids) % np.uint64(self.world_size)).astype(np.int64)


class BlockPartitioner(Partitioner):
    """Contiguous blocks of ``ceil(n / P)`` ids per rank.

    Included for comparison: with clustered id orderings it produces the
    communication/compute skew that the hash partitioner avoids.
    """

    def __init__(self, n: int, world_size: int) -> None:
        super().__init__(n, world_size)
        self.block = -(-self.n // self.world_size)  # ceil div

    def owner(self, v: int) -> int:
        if not 0 <= v < self.n:
            raise PartitionError(f"vertex id {v} out of range [0, {self.n})")
        return min(int(v) // self.block, self.world_size - 1)

    def owner_array(self, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= self.n):
            raise PartitionError("vertex id out of range in owner_array")
        return np.minimum(ids // self.block, self.world_size - 1)
