"""Vertex-to-rank partitioning.

Section 4 of the paper: "DNND distributes a k-NNG G and an input dataset
V equally among all MPI ranks based on the hash values of the vertex
IDs. Each vertex (feature vector) v and the corresponding neighbor list
G_v are located in the same MPI rank."

:class:`HashPartitioner` implements exactly that with a splitmix64-style
integer hash (deterministic across runs and platforms — Python's builtin
``hash`` is salted, so it is unsuitable).  :class:`BlockPartitioner` is
a contiguous-range alternative used in tests and the skew ablation.

Partitioning is a first-class layer: every owner decision in the system
(driver shards, process-backend workers, distributed containers, the
distributed searcher) flows through one :class:`Partitioner` instance.
Two locality-aware members make that seam worth having:

- :class:`RPTreePartitioner` packs RP-tree leaves (points that are
  likely neighbors) onto ranks in tree order — the dNSG-style
  tree-based redistribution — with a greedy capacity bound,
- :class:`ExplicitPartitioner` holds an arbitrary id→rank table and is
  the *universal serialized form*: :func:`partitioner_spec` flattens
  any partitioner to it for checkpoint persistence, and
  :func:`graph_locality_assignment` produces one from a built graph
  for the post-build repartition pass.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, List, Optional

import numpy as np

from ..errors import PartitionError

#: CLI-facing partitioner names accepted by :func:`make_partitioner`.
PARTITIONER_NAMES = ("hash", "block", "rptree")

_MASK64 = (1 << 64) - 1


def splitmix64(x: int) -> int:
    """SplitMix64 finalizer — a fast, well-mixed 64-bit integer hash."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) & _MASK64


def splitmix64_array(ids: np.ndarray) -> np.ndarray:
    """Vectorized SplitMix64 over an array of non-negative int ids."""
    x = ids.astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        x += np.uint64(0x9E3779B97F4A7C15)
        x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        x = x ^ (x >> np.uint64(31))
    return x


class Partitioner:
    """Maps global vertex ids to owning ranks and local indices."""

    #: Short identity tag used by :func:`partitioner_spec` and the CLI.
    kind = "abstract"

    def __init__(self, n: int, world_size: int) -> None:
        if n <= 0:
            raise PartitionError(f"dataset size must be positive, got {n}")
        if world_size <= 0:
            raise PartitionError(f"world_size must be positive, got {world_size}")
        self.n = int(n)
        self.world_size = int(world_size)

    # subclasses implement owner / owner_array
    def owner(self, v: int) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def owner_array(self, ids: np.ndarray) -> np.ndarray:
        return np.array([self.owner(int(v)) for v in ids], dtype=np.int64)

    def local_ids(self, rank: int) -> np.ndarray:
        """Global ids owned by ``rank``, ascending (cached)."""
        cache = getattr(self, "_local_cache", None)
        if cache is None:
            owners = self.owner_array(np.arange(self.n, dtype=np.int64))
            cache = {
                r: np.flatnonzero(owners == r).astype(np.int64)
                for r in range(self.world_size)
            }
            self._local_cache = cache
        if not 0 <= rank < self.world_size:
            raise PartitionError(f"rank {rank} out of range [0, {self.world_size})")
        return cache[rank]

    def local_index_map(self, rank: int) -> Dict[int, int]:
        """global id -> local row index on ``rank``."""
        ids = self.local_ids(rank)
        return {int(g): i for i, g in enumerate(ids)}

    def counts(self) -> List[int]:
        return [len(self.local_ids(r)) for r in range(self.world_size)]

    def max_imbalance(self) -> float:
        """max/mean partition size — hash partitioning keeps this ~1."""
        counts = self.counts()
        mean = sum(counts) / len(counts)
        return max(counts) / mean if mean else 1.0


class HashPartitioner(Partitioner):
    """Owner = splitmix64(id) mod world_size (the paper's scheme)."""

    kind = "hash"

    def owner(self, v: int) -> int:
        if not 0 <= v < self.n:
            raise PartitionError(f"vertex id {v} out of range [0, {self.n})")
        return int(splitmix64(int(v)) % self.world_size)

    def owner_array(self, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= self.n):
            raise PartitionError("vertex id out of range in owner_array")
        return (splitmix64_array(ids) % np.uint64(self.world_size)).astype(np.int64)


class BlockPartitioner(Partitioner):
    """Contiguous blocks of ``ceil(n / P)`` ids per rank.

    Included for comparison: with clustered id orderings it produces the
    communication/compute skew that the hash partitioner avoids.
    """

    kind = "block"

    def __init__(self, n: int, world_size: int) -> None:
        super().__init__(n, world_size)
        self.block = -(-self.n // self.world_size)  # ceil div

    def owner(self, v: int) -> int:
        if not 0 <= v < self.n:
            raise PartitionError(f"vertex id {v} out of range [0, {self.n})")
        return min(int(v) // self.block, self.world_size - 1)

    def owner_array(self, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= self.n):
            raise PartitionError("vertex id out of range in owner_array")
        return np.minimum(ids // self.block, self.world_size - 1)


class ExplicitPartitioner(Partitioner):
    """Arbitrary id→rank assignment table.

    The universal serialized form: every partitioner flattens to one of
    these for checkpoint persistence (:func:`partitioner_spec`), and the
    post-build repartition pass produces one from the built graph.
    ``source`` records the provenance ("rptree", "repartition", ...) so
    resume-time conflict checks can compare identities, not just tables.
    """

    kind = "explicit"

    def __init__(self, assignment: np.ndarray, world_size: int,
                 source: str = "explicit") -> None:
        arr = np.asarray(assignment, dtype=np.int64)
        if arr.ndim != 1:
            raise PartitionError(
                f"assignment must be a 1-D id->rank array, got shape {arr.shape}")
        super().__init__(len(arr), world_size)
        if arr.size and (arr.min() < 0 or arr.max() >= self.world_size):
            raise PartitionError(
                "assignment contains a rank outside "
                f"[0, {self.world_size})")
        self.assignment = arr
        self.source = str(source)

    def owner(self, v: int) -> int:
        if not 0 <= v < self.n:
            raise PartitionError(f"vertex id {v} out of range [0, {self.n})")
        return int(self.assignment[int(v)])

    def owner_array(self, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= self.n):
            raise PartitionError("vertex id out of range in owner_array")
        return self.assignment[ids]


class RPTreePartitioner(ExplicitPartitioner):
    """Locality-aware placement from one random-projection tree.

    Leaves of an RP tree hold points that are likely neighbors
    (``core/rptree.py``); packing leaves onto ranks in depth-first tree
    order keeps whole subtrees on one rank — the dNSG-style tree-based
    redistribution.  Greedy packing against a running capacity of
    ``ceil(remaining / ranks_left)`` bounds the imbalance: no rank
    exceeds its capacity by more than one leaf, so
    ``max_imbalance() <= 1 + (leaf_size - 1) * world_size / n``.
    """

    kind = "rptree"

    def __init__(self, data, world_size: int,
                 leaf_size: Optional[int] = None, seed: int = 0) -> None:
        # Lazy import: runtime.partition must stay importable without
        # pulling the core package in at module-import time.
        from ..core.rptree import RPTree
        from ..utils.rng import derive_rng

        arr = np.asarray(data, dtype=np.float64)
        if arr.ndim != 2:
            raise PartitionError(
                "rptree partitioning needs dense 2-D data, got "
                f"ndim={arr.ndim}")
        n = len(arr)
        ws = int(world_size)
        if n <= 0 or ws <= 0:
            raise PartitionError(
                f"dataset size and world_size must be positive, got {n}/{ws}")
        if leaf_size is None:
            # A handful of leaves per rank keeps packing flexible while
            # leaves stay large enough to mean something.
            leaf_size = max(2, -(-n // (ws * 8)))
        self.leaf_size = int(leaf_size)
        self.seed = int(seed)
        tree = RPTree(arr, leaf_size=self.leaf_size,
                      rng=derive_rng(self.seed, 0x9A27))
        assignment = np.empty(n, dtype=np.int64)
        remaining, rank, filled = n, 0, 0
        cap = -(-remaining // ws)
        for leaf in tree.leaves():
            if rank < ws - 1 and filled and filled + len(leaf) > cap:
                remaining -= filled
                rank += 1
                filled = 0
                cap = -(-remaining // (ws - rank))
            assignment[leaf] = rank
            filled += len(leaf)
        super().__init__(assignment, ws, source="rptree")


def make_partitioner(name: str, n: int, world_size: int, data=None,
                     seed: int = 0) -> Partitioner:
    """Construct a partitioner from its CLI name (:data:`PARTITIONER_NAMES`)."""
    if name == "hash":
        return HashPartitioner(n, world_size)
    if name == "block":
        return BlockPartitioner(n, world_size)
    if name == "rptree":
        if data is None:
            raise PartitionError(
                "rptree partitioning needs the dataset to build the tree")
        return RPTreePartitioner(data, world_size, seed=seed)
    raise PartitionError(
        f"unknown partitioner {name!r}; expected one of {PARTITIONER_NAMES}")


def partitioner_spec(p: Partitioner) -> Dict[str, Any]:
    """JSON-serializable identity of ``p`` for checkpoint metadata.

    Hash and block partitioners are reconstructible from
    ``(type, n, world_size)`` alone; every other partitioner is
    flattened to the universal explicit form (full assignment table plus
    a ``source`` provenance tag).
    """
    if p.kind in ("hash", "block"):
        return {"type": p.kind, "n": p.n, "world_size": p.world_size}
    arr = p.owner_array(np.arange(p.n, dtype=np.int64))
    return {
        "type": "explicit",
        "source": getattr(p, "source", p.kind),
        "n": p.n,
        "world_size": p.world_size,
        "assignment": [int(r) for r in arr],
    }


def partitioner_from_spec(spec: Dict[str, Any]) -> Partitioner:
    """Reconstruct a partitioner with identical ownership from its spec."""
    kind = spec.get("type")
    n = int(spec["n"])
    ws = int(spec["world_size"])
    if kind == "hash":
        return HashPartitioner(n, ws)
    if kind == "block":
        return BlockPartitioner(n, ws)
    if kind == "explicit":
        return ExplicitPartitioner(
            np.asarray(spec["assignment"], dtype=np.int64), ws,
            source=str(spec.get("source", "explicit")))
    raise PartitionError(f"unknown partitioner spec type {kind!r}")


def spec_matches(spec: Dict[str, Any], requested) -> bool:
    """Does a requested partitioner (name or instance) match a stored spec?

    A name matches the stored ``type`` or its ``source`` provenance (so
    ``"rptree"`` matches the explicit table an rptree build persisted);
    an instance matches iff it would serialize to the identical spec.
    """
    if isinstance(requested, str):
        return requested in (spec.get("type"), spec.get("source"))
    return partitioner_spec(requested) == spec


def edge_cut_fraction(partitioner: Partitioner,
                      neighbor_ids: np.ndarray) -> float:
    """Fraction of directed graph edges crossing a rank boundary.

    ``neighbor_ids`` is the ``(n, k)`` neighbor table of a built graph;
    negative entries (padding) are skipped.  O(n*k), vectorized.
    """
    ids = np.asarray(neighbor_ids, dtype=np.int64)
    if ids.ndim != 2:
        raise PartitionError(
            f"neighbor table must be 2-D, got shape {ids.shape}")
    n, k = ids.shape
    valid = ids >= 0
    total = int(np.count_nonzero(valid))
    if total == 0:
        return 0.0
    row_owner = partitioner.owner_array(np.arange(n, dtype=np.int64))
    src = np.broadcast_to(row_owner[:, None], (n, k))[valid]
    dst = partitioner.owner_array(ids[valid])
    return float(np.count_nonzero(src != dst)) / total


def graph_locality_assignment(neighbor_ids: np.ndarray,
                              world_size: int) -> np.ndarray:
    """Graph-aware explicit assignment for the repartition pass.

    Capacity-bounded multi-source BFS over the built k-NN graph: one
    rank's region grows along graph edges (so neighbors co-locate)
    until the running capacity ``ceil(remaining / ranks_left)`` fills,
    then the frontier seeds the next rank's region.  Deterministic,
    O(n*k), and exactly balanced up to the ceiling division.
    """
    ids = np.asarray(neighbor_ids, dtype=np.int64)
    if ids.ndim != 2:
        raise PartitionError(
            f"neighbor table must be 2-D, got shape {ids.shape}")
    n = ids.shape[0]
    ws = int(world_size)
    if n <= 0 or ws <= 0:
        raise PartitionError(
            f"graph size and world_size must be positive, got {n}/{ws}")
    assignment = np.full(n, -1, dtype=np.int64)
    frontier: deque = deque()
    next_seed = 0
    remaining, rank, filled = n, 0, 0
    cap = -(-remaining // ws)
    for _ in range(n):
        v = -1
        while frontier:
            cand = frontier.popleft()
            if assignment[cand] < 0:
                v = cand
                break
        if v < 0:
            while assignment[next_seed] >= 0:
                next_seed += 1
            v = next_seed
        assignment[v] = rank
        filled += 1
        for u in ids[v]:
            u = int(u)
            if u >= 0 and assignment[u] < 0:
                frontier.append(u)
        if filled >= cap and rank < ws - 1:
            remaining -= filled
            rank += 1
            filled = 0
            cap = -(-remaining // (ws - rank))
    return assignment
