"""Network/compute cost model and per-rank simulated clocks.

Figure 3 of the paper plots construction time in hours against node
count.  Our runtime is a single-process simulation, so wall-clock time
does not scale with simulated ranks — instead we *model* time with the
standard alpha-beta (latency-bandwidth) communication model plus a
per-work-unit compute model, and advance per-rank clocks as the engine
runs:

- each distance evaluation charges ``compute_per_distance * dim_factor``
  seconds to the rank that performed it (plus a small per-heap-update
  charge),
- each message charges the *sender* ``beta * nbytes`` seconds
  (bandwidth), discounted for intra-node traffic,
- each buffer flush to a destination charges the sender one ``alpha``
  (latency) — so many small unbatched sends are penalized, which is
  exactly the congestion behaviour Section 4.4's application-level
  batching addresses,
- a barrier synchronizes all clocks to the maximum (BSP semantics): a
  phase takes as long as its slowest rank, so load imbalance degrades
  scaling just as on the real machine.

The default constants model Omni-Path-class bandwidth (beta ~ 10 GB/s,
alpha ~ 1 us) with a per-distance compute cost that *includes the
candidate-handling overhead around each evaluation* (sampling, heap
maintenance), chosen so that laptop-scale runs keep the paper's
compute-to-communication ratio — roughly one feature-vector message per
distance evaluation, each costing the same order of time.  That ratio,
not the absolute numbers, is what Figure 3's scaling shape and Figure
4's savings depend on (see ``benchmarks/bench_fig3_scaling.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass(frozen=True)
class NetworkModel:
    """Cost constants for the simulated cluster.

    Attributes
    ----------
    alpha:
        Per-flush latency for inter-node traffic, seconds.  Set well
        below a raw MPI message latency because YGM amortizes it with
        hierarchical (node-level) routing and aggregation — without the
        discount, barrier-forced flushes of near-empty buffers would
        dominate at high rank counts, which is not what the real system
        exhibits.
    beta:
        Per-byte cost for inter-node traffic, seconds (1/bandwidth).
    intra_node_discount:
        Multiplier applied to both alpha and beta for messages whose
        source and destination ranks share a node (shared-memory
        transport is far cheaper than the wire).
    compute_per_distance:
        Seconds charged per scalar distance evaluation of a
        reference-dimension vector.
    reference_dim:
        Dimensionality at which ``compute_per_distance`` applies; actual
        charges scale linearly with ``dim / reference_dim``.
    compute_per_update:
        Seconds charged per neighbor-heap update attempt.
    barrier_alpha:
        Latency of one global barrier (tree reduction), seconds; charged
        ``ceil(log2(P))`` times per barrier.
    """

    alpha: float = 1.0e-7
    beta: float = 1.0 / 10.0e9  # ~10 GB/s effective per-rank injection
    intra_node_discount: float = 0.1
    compute_per_distance: float = 2.0e-7
    reference_dim: int = 96
    compute_per_update: float = 2.0e-8
    barrier_alpha: float = 1.0e-6

    def message_cost(self, nbytes: int, offnode: bool) -> float:
        """Per-message bandwidth cost (latency is charged per flush)."""
        cost = self.beta * nbytes
        return cost if offnode else cost * self.intra_node_discount

    def flush_cost(self, offnode: bool) -> float:
        return self.alpha if offnode else self.alpha * self.intra_node_discount

    def distance_cost(self, dim: int) -> float:
        return self.compute_per_distance * (max(1, dim) / self.reference_dim)


@dataclass
class CostLedger:
    """Per-rank simulated clocks plus an elapsed-time accumulator.

    ``clocks[r]`` is rank *r*'s time since the last barrier.  A barrier
    folds ``max(clocks)`` into ``elapsed`` and zeroes the per-rank
    clocks.  ``elapsed`` is therefore the BSP makespan of the run so far.
    """

    world_size: int = 1
    clocks: List[float] = field(default_factory=list)
    elapsed: float = 0.0
    barriers: int = 0
    phase_elapsed: Dict[str, float] = field(default_factory=dict)

    #: Whether charges actually accumulate — hot paths branch on this to
    #: skip cost arithmetic entirely (see :class:`NullLedger`).
    enabled = True

    def __post_init__(self) -> None:
        if not self.clocks:
            self.clocks = [0.0] * self.world_size

    def charge(self, rank: int, seconds: float) -> None:
        self.clocks[rank] += seconds

    def charge_repeated(self, rank: int, seconds: float, count: int) -> None:
        """Charge ``seconds`` to ``rank`` ``count`` times.

        Deliberately a loop, NOT ``seconds * count``: repeated float
        addition is not the same computation as one multiply-add, and
        the batch execution engine must reproduce the scalar path's
        clock bit-for-bit.  Adding the *same* constant ``count`` times
        is order-free, so batching the adds together is exact.
        """
        t = self.clocks[rank]
        for _ in range(count):
            t += seconds
        self.clocks[rank] = t

    def barrier(self, model: NetworkModel, phase: str | None = None) -> float:
        """Synchronize clocks; returns the superstep duration."""
        step = max(self.clocks) if self.clocks else 0.0
        depth = max(1, (self.world_size - 1).bit_length())
        step += model.barrier_alpha * depth
        self.elapsed += step
        self.barriers += 1
        if phase is not None:
            self.phase_elapsed[phase] = self.phase_elapsed.get(phase, 0.0) + step
        for r in range(self.world_size):
            self.clocks[r] = 0.0
        return step

    def imbalance(self) -> float:
        """max/mean of current per-rank clocks (1.0 = perfectly balanced)."""
        if not self.clocks:
            return 1.0
        mean = sum(self.clocks) / len(self.clocks)
        if mean == 0.0:
            return 1.0
        return max(self.clocks) / mean

    def reset(self) -> None:
        self.elapsed = 0.0
        self.barriers = 0
        self.phase_elapsed.clear()
        for r in range(self.world_size):
            self.clocks[r] = 0.0


@dataclass
class NullLedger(CostLedger):
    """A ledger that accepts charges and discards them.

    The cost model is a *simulation* feature: it exists to predict
    Figure 3's scaling shape from deterministic replay, which is
    meaningless under the wall-clock-parallel backend (and its per-rank
    clocks would be write-contended there anyway).  The parallel
    transport carries a ``NullLedger`` so driver code can keep calling
    ``ledger.barrier()`` / ``ctx.charge_*`` unconditionally; hot paths
    that *compute* cost values before charging should branch on
    ``ledger.enabled`` and skip the arithmetic.
    """

    enabled = False

    def charge(self, rank: int, seconds: float) -> None:
        pass

    def charge_repeated(self, rank: int, seconds: float, count: int) -> None:
        pass

    def barrier(self, model: NetworkModel, phase: str | None = None) -> float:
        self.barriers += 1
        return 0.0
