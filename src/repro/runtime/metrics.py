"""Backend-agnostic metrics: counters, gauges, timers, spans, exporters.

The paper's first future-work item (Section 7) asks for deeper
profiling — "how much the computation or communication is heavier than
the other".  :class:`~repro.runtime.tracing.RuntimeTracer` answers that
for the *simulated* backend by reading the cost ledger, but the
shared-memory parallel backend carries a :class:`~repro.runtime.netmodel.NullLedger`
and was a black box.  This module is the one metrics surface every
backend reports into:

- **counters** — monotonic totals, *synchronized absolutely* at barriers
  from the runtime's authoritative aggregates (message statistics,
  handler invocation counts, fault counters) rather than incremented on
  the hot path, so metrics-on adds no per-message work;
- **gauges** — last-write-wins floats (e.g. the sim cost model's
  decomposition, published as an *enrichment* when a real ledger is
  present);
- **timers / spans** — wall-clock phase timing via the :meth:`MetricsRegistry.span`
  context manager; every closed span accumulates a ``<name>.seconds``
  timer and appends a :class:`SpanRecord` to the structured timeline;
- **histograms** — power-of-two latency buckets fed by span durations
  and :meth:`MetricsRegistry.observe`.

Naming convention (see DESIGN.md §12): dotted lowercase paths —
``messages.sent.<type>``, ``bytes.sent``, ``phase.<name>.seconds``,
``executor.tasks``, ``heap.updates``, ``faults.<event>``.  Both
execution backends emit the *same names*; the cross-backend conformance
suite (``tests/integration/test_backend_conformance.py``) pins the
order-insensitive subset to identical values.

Two exporters:

- :meth:`MetricsRegistry.snapshot` — a JSON-serializable dict
  (``repro construct --metrics-out out.json``, pretty-printed by
  ``repro stats out.json``);
- :meth:`MetricsRegistry.to_chrome_trace` — Chrome trace-event format,
  loadable in ``chrome://tracing`` or https://ui.perfetto.dev
  (``repro construct --trace-out out.trace.json``).

Disabled runs use the module-level :data:`NULL_METRICS`
:class:`NullMetricsRegistry` singleton: every method is a no-op that
allocates nothing (``span`` returns one shared reusable context
manager), so ``DNNDConfig(metrics=False)`` costs a single attribute
check per call site.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple

#: Version tag embedded in every snapshot so downstream consumers can
#: detect schema drift (bump when the snapshot layout changes).
SNAPSHOT_SCHEMA = "repro.metrics/1"

#: Histogram bucket upper bounds, seconds: 1 us .. 64 s in powers of two,
#: plus +Inf.  Fixed (not data-dependent) so snapshots from different
#: runs are comparable bucket-for-bucket.
HISTOGRAM_BUCKETS: Tuple[float, ...] = tuple(
    2.0 ** e for e in range(-20, 7)
)


@dataclass
class SpanRecord:
    """One closed span on the structured timeline.

    ``start`` / ``end`` are seconds since the registry's epoch (its
    creation time), so exported timestamps are small and runs are
    comparable; ``tid`` is a dense per-registry thread index so traces
    from the parallel backend lay concurrent spans on separate tracks.
    """

    name: str
    cat: str
    start: float
    end: float
    tid: int = 0
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class _Span:
    """Context-manager handle returned by :meth:`MetricsRegistry.span`."""

    __slots__ = ("_registry", "_name", "_cat", "_args", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str, cat: str,
                 args: Dict[str, Any]) -> None:
        self._registry = registry
        self._name = name
        self._cat = cat
        self._args = args
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = self._registry._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._registry._close_span(self._name, self._cat, self._args,
                                   self._start, self._registry._clock())


class _NullSpan:
    """Shared, reusable no-op context manager (zero allocation per use)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class MetricsRegistry:
    """Thread-safe metrics registry shared by one build or searcher.

    All mutation goes through one lock; the runtime only calls in at
    barrier/phase granularity (never per message), so the lock is far
    off every hot path — the thread-safety matters for the parallel
    executor's concurrent rank sections and threaded query engines.
    """

    #: Call sites branch on this to skip building metric values at all
    #: when handed the null registry.
    enabled = True

    #: Attached :class:`repro.analysis.race.RaceSanitizer` under
    #: ``REPRO_SANITIZE=race``; ``None`` otherwise.  Never set on the
    #: shared :data:`NULL_METRICS` singleton.  Only the absolute
    #: *publication* writers (:meth:`set_counter`/:meth:`set_gauge`) are
    #: stamped: publication is a driver-at-barrier responsibility, and
    #: the registry's internal lock is deliberately *not* part of the
    #: lockset — mutual exclusion does not excuse publishing from task
    #: scope.  ``inc``/``observe``/``span`` are legitimate from
    #: concurrent threads (threaded query engines) and stay unhooked.
    race = None

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._epoch = clock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        # name -> [count, total_seconds]
        self._timers: Dict[str, List[float]] = {}
        # name -> {bucket_index: count}; index len(HISTOGRAM_BUCKETS) = +Inf
        self._histograms: Dict[str, Dict[int, int]] = {}
        self._hist_sums: Dict[str, List[float]] = {}
        self.spans: List[SpanRecord] = []
        self._tids: Dict[int, int] = {}

    # -- writers -------------------------------------------------------------

    def inc(self, name: str, value: int = 1) -> None:
        """Add ``value`` to counter ``name`` (creates at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def set_counter(self, name: str, value: int) -> None:
        """Set counter ``name`` to an absolute value.

        The runtime's barrier-time synchronization path: authoritative
        aggregates (message stats, handler counts) are mirrored into the
        registry by *assignment*, which is idempotent and order-free —
        re-publishing after every barrier converges to the same totals
        no matter how supersteps interleaved.
        """
        race = self.race
        if race is not None:
            race.access(("metric", name), write=True)
        with self._lock:
            self._counters[name] = int(value)

    def set_gauge(self, name: str, value: float) -> None:
        race = self.race
        if race is not None:
            race.access(("metric", name), write=True)
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, seconds: float) -> None:
        """Record one latency observation into fixed power-of-two buckets."""
        idx = self._bucket_index(seconds)
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = {}
                self._hist_sums[name] = [0, 0.0]
            hist[idx] = hist.get(idx, 0) + 1
            acc = self._hist_sums[name]
            acc[0] += 1
            acc[1] += seconds

    def span(self, name: str, cat: str = "phase", **args: Any) -> _Span:
        """Wall-clock span context manager.

        On exit it appends a :class:`SpanRecord`, accumulates the
        ``<name>.seconds`` timer, and feeds the duration into the
        ``<cat>.latency`` histogram.
        """
        return _Span(self, name, cat, args)

    def _close_span(self, name: str, cat: str, args: Dict[str, Any],
                    start: float, end: float) -> None:
        duration = end - start
        ident = threading.get_ident()
        with self._lock:
            tid = self._tids.setdefault(ident, len(self._tids))
            self.spans.append(SpanRecord(
                name=name, cat=cat, start=start - self._epoch,
                end=end - self._epoch, tid=tid, args=args))
            timer = self._timers.get(name)
            if timer is None:
                timer = self._timers[name] = [0, 0.0]
            timer[0] += 1
            timer[1] += duration
        self.observe(f"{cat}.latency", duration)

    def reset(self) -> None:
        with self._lock:
            self._epoch = self._clock()
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()
            self._histograms.clear()
            self._hist_sums.clear()
            self.spans.clear()
            self._tids.clear()

    # -- readers -------------------------------------------------------------

    def counter(self, name: str, default: int = 0) -> int:
        with self._lock:
            return self._counters.get(name, default)

    def counters_with_prefix(self, prefix: str) -> Dict[str, int]:
        """``{suffix: value}`` for every counter named ``prefix + suffix``."""
        with self._lock:
            n = len(prefix)
            return {k[n:]: v for k, v in self._counters.items()
                    if k.startswith(prefix)}

    def timer_seconds(self, name: str) -> float:
        with self._lock:
            timer = self._timers.get(name)
            return timer[1] if timer else 0.0

    def phase_names(self) -> List[str]:
        """Distinct span names with ``cat == "phase"`` in first-seen order."""
        with self._lock:
            out: List[str] = []
            for s in self.spans:
                if s.cat == "phase" and s.name not in out:
                    out.append(s.name)
            return out

    @staticmethod
    def _bucket_index(seconds: float) -> int:
        if seconds <= HISTOGRAM_BUCKETS[0]:
            return 0
        if seconds > HISTOGRAM_BUCKETS[-1] or math.isnan(seconds):
            return len(HISTOGRAM_BUCKETS)
        # Smallest power-of-two bound >= seconds.
        e = math.ceil(math.log2(seconds))
        return min(max(e + 20, 0), len(HISTOGRAM_BUCKETS) - 1)

    # -- exporters -----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable snapshot of everything in the registry."""
        with self._lock:
            hists = {}
            for name, buckets in sorted(self._histograms.items()):
                count, total = self._hist_sums[name]
                hists[name] = {
                    "buckets": {
                        ("+Inf" if i >= len(HISTOGRAM_BUCKETS)
                         else repr(HISTOGRAM_BUCKETS[i])): c
                        for i, c in sorted(buckets.items())
                    },
                    "count": int(count),
                    "sum_seconds": total,
                }
            return {
                "schema": SNAPSHOT_SCHEMA,
                "enabled": True,
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "timers": {
                    name: {"count": int(t[0]), "seconds": t[1]}
                    for name, t in sorted(self._timers.items())
                },
                "histograms": hists,
                "spans": [
                    {"name": s.name, "cat": s.cat, "start": s.start,
                     "end": s.end, "tid": s.tid, "args": dict(s.args)}
                    for s in self.spans
                ],
            }

    def to_chrome_trace(self, process_name: str = "repro") -> Dict[str, Any]:
        """Chrome trace-event JSON (the ``chrome://tracing`` / Perfetto
        format): one complete ("X") event per span, counter totals as a
        final "C" event, timestamps in microseconds since the registry
        epoch."""
        with self._lock:
            events: List[Dict[str, Any]] = [{
                "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
                "args": {"name": process_name},
            }]
            last_ts = 0.0
            for s in self.spans:
                ts = s.start * 1e6
                dur = (s.end - s.start) * 1e6
                last_ts = max(last_ts, ts + dur)
                events.append({
                    "name": s.name, "cat": s.cat, "ph": "X",
                    "ts": ts, "dur": dur, "pid": 0, "tid": s.tid,
                    "args": dict(s.args),
                })
            for name, value in sorted(self._counters.items()):
                events.append({
                    "name": name, "ph": "C", "ts": last_ts, "pid": 0,
                    "args": {"value": value},
                })
            return {"traceEvents": events, "displayTimeUnit": "ms"}


class NullMetricsRegistry(MetricsRegistry):
    """Metrics turned off: every operation is a zero-allocation no-op.

    Used as the process-wide :data:`NULL_METRICS` singleton — do not
    instantiate more (identity comparison against ``NULL_METRICS`` is
    how call sites detect the disabled state).
    """

    enabled = False

    def inc(self, name: str, value: int = 1) -> None:
        pass

    def set_counter(self, name: str, value: int) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, seconds: float) -> None:
        pass

    def span(self, name: str, cat: str = "phase", **args: Any) -> Any:
        return _NULL_SPAN

    def snapshot(self) -> Dict[str, Any]:
        return {"schema": SNAPSHOT_SCHEMA, "enabled": False,
                "counters": {}, "gauges": {}, "timers": {},
                "histograms": {}, "spans": []}

    def to_chrome_trace(self, process_name: str = "repro") -> Dict[str, Any]:
        return {"traceEvents": [], "displayTimeUnit": "ms"}


#: Process-wide disabled registry.
NULL_METRICS = NullMetricsRegistry()


def deterministic_projection(snap: Dict[str, Any]) -> Dict[str, Any]:
    """The bit-for-bit reproducible part of a snapshot.

    Wall-clock quantities (span times, timer seconds, histograms) vary
    run to run; everything else — counters, the span *name sequence*,
    per-timer invocation counts, and gauges under the ``sim.`` prefix
    (published from the deterministic cost model) — must be identical
    for identical sim-backend builds.  The golden-trace regression test
    compares this projection against a checked-in snapshot.
    """
    return {
        "schema": snap.get("schema"),
        "counters": dict(snap.get("counters", {})),
        "span_names": [s["name"] for s in snap.get("spans", [])],
        "timer_counts": {
            name: t["count"] for name, t in snap.get("timers", {}).items()
        },
        "sim_gauges": {
            k: v for k, v in snap.get("gauges", {}).items()
            if k.startswith("sim.")
        },
    }
