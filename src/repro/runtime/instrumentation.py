"""Message statistics by type — the measurement behind Figure 4.

The paper names four message kinds in the neighbor-check step
(Section 4.3 / Figure 1):

- ``type1`` — neighbor-check request from the center vertex,
- ``type2`` — feature-vector message (unoptimized pattern),
- ``type2+`` — feature vector + sender's worst-neighbor distance
  (optimized pattern, Section 4.3.3),
- ``type3`` — distance reply (optimized pattern, Section 4.3.1).

Figure 4 reports, per pattern, the number of messages and total bytes.
:class:`MessageStats` tracks exactly that, split by message type and by
whether the message crossed a node boundary ("sent off nodes" in the
paper's wording).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .metrics import MetricsRegistry


@dataclass
class TypeStats:
    """Counters for one message type."""

    count: int = 0
    bytes: int = 0
    offnode_count: int = 0
    offnode_bytes: int = 0

    def record(self, nbytes: int, offnode: bool) -> None:
        self.count += 1
        self.bytes += int(nbytes)
        if offnode:
            self.offnode_count += 1
            self.offnode_bytes += int(nbytes)

    def record_many(self, count: int, nbytes: int,
                    offnode_count: int, offnode_bytes: int) -> None:
        """Aggregated form of :meth:`record` — integer counters are
        order-free, so batched emission can record one sum per block and
        stay identical to per-message recording."""
        self.count += int(count)
        self.bytes += int(nbytes)
        self.offnode_count += int(offnode_count)
        self.offnode_bytes += int(offnode_bytes)

    def merged(self, other: "TypeStats") -> "TypeStats":
        return TypeStats(
            self.count + other.count,
            self.bytes + other.bytes,
            self.offnode_count + other.offnode_count,
            self.offnode_bytes + other.offnode_bytes,
        )


@dataclass
class FaultStats:
    """Counters for injected faults and the recovery work they caused.

    The injector (:mod:`.faults`) increments the fault side; the
    transport-level reliability layer
    (:class:`~repro.runtime.transports.base.ReliableDelivery`) and the
    comm layer's failure detector increment the recovery side.  One
    shared instance per run, so an ablation can report "N drops cost M
    retransmits" from one object.
    """

    dropped: int = 0
    duplicated: int = 0
    reordered_flushes: int = 0
    delayed: int = 0
    stalls: int = 0
    crashes: int = 0
    crash_dropped: int = 0
    recoveries: int = 0
    retransmits: int = 0
    acks_sent: int = 0
    duplicates_suppressed: int = 0
    retry_budget_exhausted: int = 0
    #: Rank failures the comm layer *detected* (crashed-set observation
    #: or heartbeat timeout), each counted once per failure event — the
    #: numerator of the detection-SLO metrics.
    detected: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}

    def total_events(self) -> int:
        return sum(self.snapshot().values())

    def any_faults(self) -> bool:
        """True if the injector perturbed anything (recovery counters
        excluded: retransmits without faults would be a bug)."""
        return bool(self.dropped or self.duplicated or self.reordered_flushes
                    or self.delayed or self.stalls or self.crashes)

    def format_line(self) -> str:
        active = {k: v for k, v in self.snapshot().items() if v}
        if not active:
            return "faults: none"
        return "faults: " + ", ".join(f"{k}={v:,}" for k, v in sorted(active.items()))

    def publish(self, registry: "MetricsRegistry",
                prefix: str = "faults.") -> None:
        """Mirror every counter into the metrics registry as
        ``faults.<event>``.  Zeros are published too, so fault-free runs
        and backends without an injector emit the same metric names."""
        for name, value in self.snapshot().items():
            registry.set_counter(prefix + name, value)


@dataclass
class MessageStats:
    """Per-type message accounting for one run (or one phase of a run)."""

    by_type: Dict[str, TypeStats] = field(default_factory=dict)

    def record(self, msg_type: str, nbytes: int, offnode: bool) -> None:
        stats = self.by_type.get(msg_type)
        if stats is None:
            stats = self.by_type[msg_type] = TypeStats()
        stats.record(nbytes, offnode)

    def record_many(self, msg_type: str, count: int, nbytes: int,
                    offnode_count: int, offnode_bytes: int) -> None:
        """Record an aggregated block of same-type messages (see
        :meth:`TypeStats.record_many`)."""
        stats = self.by_type.get(msg_type)
        if stats is None:
            stats = self.by_type[msg_type] = TypeStats()
        stats.record_many(count, nbytes, offnode_count, offnode_bytes)

    # -- aggregate views ----------------------------------------------------

    def total_count(self, types: Iterable[str] | None = None) -> int:
        return sum(s.count for t, s in self.by_type.items() if types is None or t in set(types))

    def total_bytes(self, types: Iterable[str] | None = None) -> int:
        return sum(s.bytes for t, s in self.by_type.items() if types is None or t in set(types))

    def offnode_count(self, types: Iterable[str] | None = None) -> int:
        return sum(
            s.offnode_count for t, s in self.by_type.items() if types is None or t in set(types)
        )

    def offnode_bytes(self, types: Iterable[str] | None = None) -> int:
        return sum(
            s.offnode_bytes for t, s in self.by_type.items() if types is None or t in set(types)
        )

    def get(self, msg_type: str) -> TypeStats:
        return self.by_type.get(msg_type, TypeStats())

    def merged(self, other: "MessageStats") -> "MessageStats":
        out = MessageStats()
        for t in set(self.by_type) | set(other.by_type):
            out.by_type[t] = self.get(t).merged(other.get(t))
        return out

    def snapshot(self) -> Dict[str, Tuple[int, int]]:
        """``{type: (count, bytes)}`` — compact view for reports."""
        return {t: (s.count, s.bytes) for t, s in sorted(self.by_type.items())}

    def reset(self) -> None:
        self.by_type.clear()

    def publish(self, registry: "MetricsRegistry") -> None:
        """Mirror the per-type totals into the metrics registry using the
        backend-agnostic naming convention (DESIGN.md §12):
        ``messages.sent.<type>`` / ``messages.bytes.<type>`` per type,
        plus the ``messages.sent`` / ``bytes.sent`` and off-node
        aggregates.  Assignment of absolute totals, not increments: the
        runtime calls this after every barrier and idempotently
        converges to the authoritative counts."""
        total_count = total_bytes = off_count = off_bytes = 0
        for t, s in self.by_type.items():
            registry.set_counter(f"messages.sent.{t}", s.count)
            registry.set_counter(f"messages.bytes.{t}", s.bytes)
            total_count += s.count
            total_bytes += s.bytes
            off_count += s.offnode_count
            off_bytes += s.offnode_bytes
        registry.set_counter("messages.sent", total_count)
        registry.set_counter("bytes.sent", total_bytes)
        registry.set_counter("messages.offnode.sent", off_count)
        registry.set_counter("messages.offnode.bytes", off_bytes)

    def format_table(self, title: str = "messages") -> str:
        """Fixed-width report used by benchmarks and examples."""
        lines = [
            f"{title}",
            f"{'type':<10s} {'count':>14s} {'bytes':>16s} {'off-node count':>16s} {'off-node bytes':>16s}",
        ]
        for t in sorted(self.by_type):
            s = self.by_type[t]
            lines.append(
                f"{t:<10s} {s.count:>14,d} {s.bytes:>16,d} {s.offnode_count:>16,d} {s.offnode_bytes:>16,d}"
            )
        lines.append(
            f"{'TOTAL':<10s} {self.total_count():>14,d} {self.total_bytes():>16,d} "
            f"{self.offnode_count():>16,d} {self.offnode_bytes():>16,d}"
        )
        return "\n".join(lines)
