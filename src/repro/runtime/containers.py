"""YGM-style distributed containers.

The real YGM ships distributed containers (``ygm::container::bag``,
``map``, ``counting_set``) built on the async RPC layer; TriPoll and
DNND-adjacent applications use them for irregular aggregations.  This
module provides the simulated equivalents on :class:`YGMWorld`:

- :class:`DistributedBag` — unordered multiset; ``async_insert`` sends
  the item to a pseudo-random owner (load balancing), ``gather`` and
  ``local_size`` read it back,
- :class:`DistributedCounter` — a counting map keyed by hashable items,
  owner-partitioned by hash; supports ``async_add`` and global top-k,
- :class:`DistributedMap` — an owner-partitioned key-value map with
  ``async_insert`` / ``async_visit`` (run a named callback *at* the
  key's owner — YGM's signature idiom).

All mutation is fire-and-forget; reads require a preceding
``world.barrier()``, exactly like the real library.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..errors import RuntimeStateError
from .partition import Partitioner, splitmix64
from .ygm import RankContext, YGMWorld

_REGISTRY_KEY = "_ygm_containers"
_VISIT_REGISTRY: Dict[str, Callable] = {}


def _container_state(ctx: RankContext, cid: str, kind: str):
    registry = ctx.state.setdefault(_REGISTRY_KEY, {})
    if cid not in registry:
        registry[cid] = [] if kind == "bag" else {}
    return registry[cid]


def _h_bag_insert(ctx: RankContext, cid: str, item: Any) -> None:
    _container_state(ctx, cid, "bag").append(item)


def _h_counter_add(ctx: RankContext, cid: str, key: Any, amount: int) -> None:
    state = _container_state(ctx, cid, "map")
    state[key] = state.get(key, 0) + amount


def _h_map_insert(ctx: RankContext, cid: str, key: Any, value: Any) -> None:
    # Same-destination inserts from different source ranks arrive in
    # flush order, not send order.  Every RPC carries a global send
    # sequence (stamped at async_call time); applying same-key writes in
    # sequence order makes "last writer" mean the last *sender*, stable
    # under flush order, retransmission, and injected reordering.
    state = _container_state(ctx, cid, "map")
    seqs = _container_state(ctx, f"{cid}#seq", "map")
    seq = ctx.world.current_message_seq
    if seq is None:
        state[key] = value
        return
    prev = seqs.get(key)
    if prev is None or seq >= prev:
        state[key] = value
        seqs[key] = seq


def _h_map_visit(ctx: RankContext, cid: str, key: Any, visitor: str,
                 args: tuple) -> None:
    fn = _VISIT_REGISTRY.get(visitor)
    if fn is None:
        raise RuntimeStateError(f"unknown visitor {visitor!r}")
    state = _container_state(ctx, cid, "map")
    fn(ctx, state, key, *args)


def register_visitor(name: str, fn: Callable) -> None:
    """Register a map visitor callable ``fn(ctx, local_map, key, *args)``.

    Visitors run at the key's owner rank (YGM's ``async_visit``)."""
    if name in _VISIT_REGISTRY:
        raise RuntimeStateError(f"visitor {name!r} already registered")
    _VISIT_REGISTRY[name] = fn


def _ensure_handlers(world: YGMWorld) -> None:
    if getattr(world, "_containers_registered", False):
        return
    world.register_handlers(
        _bag_insert=_h_bag_insert,
        _counter_add=_h_counter_add,
        _map_insert=_h_map_insert,
        _map_visit=_h_map_visit,
    )
    world._containers_registered = True  # type: ignore[attr-defined]


#: An ownership policy for container keys: either a callable mapping a
#: key to its owning rank, or a :class:`Partitioner` (whose ``owner``
#: is used directly — suitable when keys are vertex ids below ``n``).
OwnerPolicy = Union[Callable[[Any], int], Partitioner]


class _ContainerBase:
    _kind = "map"

    def __init__(self, world: YGMWorld, name: str,
                 owner: Optional[OwnerPolicy] = None) -> None:
        _ensure_handlers(world)
        self.world = world
        self.cid = f"{type(self).__name__}:{name}"
        if isinstance(owner, Partitioner):
            self._owner_fn: Optional[Callable[[Any], int]] = owner.owner
        else:
            self._owner_fn = owner

    def _owner_of(self, key: Any) -> int:
        # Default: splitmix64 over the (salted-hash-masked) key — the
        # historical behavior, bit-identical when no policy is injected.
        if self._owner_fn is None:
            return int(splitmix64(hash(key) & ((1 << 63) - 1))
                       % self.world.world_size)
        rank = int(self._owner_fn(key))
        if not 0 <= rank < self.world.world_size:
            raise RuntimeStateError(
                f"owner policy for {self.cid} returned rank {rank}, "
                f"outside [0, {self.world.world_size})")
        return rank

    def _local(self, rank: int):
        return _container_state(self.world.ranks[rank], self.cid, self._kind)


class DistributedBag(_ContainerBase):
    """Unordered distributed multiset with round-robin-ish placement."""

    _kind = "bag"

    def __init__(self, world: YGMWorld, name: str = "bag") -> None:
        super().__init__(world, name)
        self._spray = 0

    def async_insert(self, src_rank: int, item: Any, nbytes: int = 8) -> None:
        dest = self._spray % self.world.world_size
        self._spray += 1
        self.world.async_call(src_rank, dest, "_bag_insert", self.cid, item,
                              nbytes=nbytes, msg_type="bag")

    def local_size(self, rank: int) -> int:
        return len(self._local(rank))

    def size(self) -> int:
        """Global size (call after a barrier)."""
        return sum(self.local_size(r) for r in range(self.world.world_size))

    def gather(self) -> List[Any]:
        out: List[Any] = []
        for r in range(self.world.world_size):
            out.extend(self._local(r))
        return out

    def balance_factor(self) -> float:
        sizes = [self.local_size(r) for r in range(self.world.world_size)]
        mean = sum(sizes) / len(sizes)
        return max(sizes) / mean if mean else 1.0


class DistributedCounter(_ContainerBase):
    """Owner-partitioned counting map (``ygm::container::counting_set``).

    ``owner`` injects the ownership policy (callable or
    :class:`Partitioner`); the default splitmix64-over-``hash(key)``
    placement is unchanged.
    """

    def __init__(self, world: YGMWorld, name: str = "counter",
                 owner: Optional[OwnerPolicy] = None) -> None:
        super().__init__(world, name, owner=owner)

    def async_add(self, src_rank: int, key: Any, amount: int = 1,
                  nbytes: int = 12) -> None:
        self.world.async_call(src_rank, self._owner_of(key), "_counter_add",
                              self.cid, key, amount,
                              nbytes=nbytes, msg_type="counter")

    def count_of(self, key: Any) -> int:
        """Count for ``key`` (after a barrier)."""
        owner = self._owner_of(key)
        return self._local(owner).get(key, 0)

    def total(self) -> int:
        return sum(sum(self._local(r).values())
                   for r in range(self.world.world_size))

    def top_k(self, k: int) -> List[Tuple[Any, int]]:
        """Globally heaviest ``k`` keys (after a barrier)."""
        merged: Dict[Any, int] = {}
        for r in range(self.world.world_size):
            for key, cnt in self._local(r).items():
                merged[key] = merged.get(key, 0) + cnt
        return sorted(merged.items(), key=lambda t: (-t[1], str(t[0])))[:k]


class DistributedMap(_ContainerBase):
    """Owner-partitioned key-value map with remote visitation.

    Ordering guarantee (stronger than real YGM): every insert carries
    the world's global send sequence, and the owner applies same-key
    writes in *send* order — last writer wins regardless of which source
    rank's buffer happened to flush first.  ``async_visit`` callbacks
    still run in delivery order; use :class:`DistributedCounter` or a
    commutative visitor when concurrent updates must merge.

    ``owner`` injects the ownership policy (callable or
    :class:`Partitioner`); the default splitmix64-over-``hash(key)``
    placement is unchanged.
    """

    def __init__(self, world: YGMWorld, name: str = "map",
                 owner: Optional[OwnerPolicy] = None) -> None:
        super().__init__(world, name, owner=owner)

    def async_insert(self, src_rank: int, key: Any, value: Any,
                     nbytes: int = 16) -> None:
        self.world.async_call(src_rank, self._owner_of(key), "_map_insert",
                              self.cid, key, value,
                              nbytes=nbytes, msg_type="map")

    def async_visit(self, src_rank: int, key: Any, visitor: str,
                    *args: Any, nbytes: int = 16) -> None:
        """Run ``visitor`` (see :func:`register_visitor`) at the owner of
        ``key`` — YGM's hallmark primitive; the visitor may mutate the
        local entry and send further messages."""
        self.world.async_call(src_rank, self._owner_of(key), "_map_visit",
                              self.cid, key, visitor, args,
                              nbytes=nbytes, msg_type="map")

    def get(self, key: Any, default: Any = None) -> Any:
        """Owner-local read (after a barrier)."""
        return self._local(self._owner_of(key)).get(key, default)

    def size(self) -> int:
        return sum(len(self._local(r)) for r in range(self.world.world_size))

    def items(self) -> List[Tuple[Any, Any]]:
        out: List[Tuple[Any, Any]] = []
        for r in range(self.world.world_size):
            out.extend(self._local(r).items())
        return out
