"""Deterministic fault injection for the simulated cluster.

The paper's DNND targets thousands of MPI ranks, where message loss,
stragglers, and outright rank failures are the operational reality.  The
simulated runtime is perfectly reliable by default, so none of the
recovery machinery a production deployment needs would ever be
exercised.  This module supplies the missing adversary:

- :class:`FaultPlan` — a frozen, seeded description of *what* can go
  wrong: per-delivery drop / duplication / delay probabilities, per-flush
  reorder and transient-stall probabilities (with modeled time
  penalties), and scheduled rank crashes at given iterations.  Two plans
  with equal fields replay **byte-identically**: every probabilistic
  decision comes from a keyed RNG stream derived from ``seed``.
- :class:`FaultInjector` — the stateful consumer of a plan that
  :meth:`SimCluster.deliver <repro.runtime.simmpi.SimCluster.deliver>`
  and :meth:`YGMWorld._flush <repro.runtime.ygm.YGMWorld._flush>`
  consult.  It tracks crashed ranks, holds delayed messages until their
  release tick, and counts everything it does in a shared
  :class:`~repro.runtime.instrumentation.FaultStats`.

Faults model the *network and the nodes*, not the program: only remote
(``src != dest``) traffic is perturbed, and collectives are left alone
(MPI collectives carry their own completion semantics).  Masking the
faults is the job of :class:`~repro.runtime.ygm.YGMWorld`'s reliable
delivery mode and the checkpoint-recovery loop in
:class:`~repro.core.dnnd.DNND`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Tuple

from ..errors import ConfigError
from ..utils.rng import derive_rng
from .instrumentation import FaultStats

# Key mixed into the seed so the fault stream never collides with the
# algorithm's own keyed RNG streams (which use small phase keys).
_FAULT_STREAM_KEY = 0xFA17


@dataclass(frozen=True)
class FaultPlan:
    """Seeded description of the faults to inject into one run.

    Attributes
    ----------
    seed:
        Root seed of the decision stream; equal plans replay
        byte-identically (see :meth:`signature`).
    drop_rate / dup_rate / delay_rate:
        Per-remote-delivery probabilities of losing the message,
        delivering an extra copy, and deferring delivery by
        1..``max_delay_ticks`` barrier rounds.
    reorder_rate:
        Per-flush probability that the flushed buffer's messages are
        delivered in a permuted order.
    stall_rate / stall_seconds:
        Per-flush probability that the sending rank stalls (a straggler:
        page fault, OS jitter, a slow NIC), charging ``stall_seconds``
        of modeled time to its clock.
    crashes:
        ``((iteration, rank), ...)`` — rank ``rank`` dies at the start
        of NN-Descent iteration ``iteration`` (0-based).  Each crash
        fires once, even if the iteration is replayed after recovery.
    """

    seed: int = 0
    drop_rate: float = 0.0
    dup_rate: float = 0.0
    reorder_rate: float = 0.0
    delay_rate: float = 0.0
    max_delay_ticks: int = 3
    stall_rate: float = 0.0
    stall_seconds: float = 1.0e-4
    crashes: Tuple[Tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        for name in ("drop_rate", "dup_rate", "reorder_rate", "delay_rate",
                     "stall_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {value}")
        if self.max_delay_ticks < 1:
            raise ConfigError("max_delay_ticks must be >= 1")
        if self.stall_seconds < 0:
            raise ConfigError("stall_seconds must be >= 0")
        object.__setattr__(
            self, "crashes",
            tuple(sorted((int(it), int(rank)) for it, rank in self.crashes)))
        for it, _rank in self.crashes:
            if it < 0:
                raise ConfigError(f"crash iteration must be >= 0, got {it}")

    @property
    def is_null(self) -> bool:
        """True when the plan injects nothing at all."""
        return (self.drop_rate == 0.0 and self.dup_rate == 0.0
                and self.reorder_rate == 0.0 and self.delay_rate == 0.0
                and self.stall_rate == 0.0 and not self.crashes)

    def with_crash(self, rank: int, at_iteration: int) -> "FaultPlan":
        """A copy of this plan with one more scheduled rank crash."""
        return FaultPlan(
            seed=self.seed, drop_rate=self.drop_rate, dup_rate=self.dup_rate,
            reorder_rate=self.reorder_rate, delay_rate=self.delay_rate,
            max_delay_ticks=self.max_delay_ticks, stall_rate=self.stall_rate,
            stall_seconds=self.stall_seconds,
            crashes=self.crashes + ((int(at_iteration), int(rank)),))

    def signature(self, n_events: int = 256) -> bytes:
        """The first ``n_events`` raw decision draws as bytes.

        Determinism probe: two plans with equal fields produce equal
        signatures, so a logged plan can be replayed exactly.
        """
        rng = derive_rng(self.seed, _FAULT_STREAM_KEY)
        return rng.random(int(n_events)).tobytes()


class FaultInjector:
    """Stateful, deterministic executor of a :class:`FaultPlan`.

    One injector serves one :class:`~repro.runtime.simmpi.SimCluster`.
    All randomness is drawn in call order from a single keyed stream, so
    a fixed program + plan yields a bit-identical fault schedule.
    """

    def __init__(self, plan: FaultPlan, world_size: int) -> None:
        self.plan = plan
        self.world_size = int(world_size)
        for _it, rank in plan.crashes:
            if not 0 <= rank < self.world_size:
                raise ConfigError(
                    f"crash rank {rank} out of range for world size "
                    f"{self.world_size}")
        self.stats = FaultStats()
        self.crashed: set[int] = set()
        self._fired_crashes: set[Tuple[int, int]] = set()
        self._rng = derive_rng(plan.seed, _FAULT_STREAM_KEY)
        # Delayed deliveries: (release_tick, insertion_index, src, dest, item).
        self._delayed: List[Tuple[int, int, int, int, Any]] = []
        self._held = 0
        self._clock = 0

    # -- per-delivery decisions (consulted by SimCluster.deliver) -----------

    def on_deliver(self, src: int, dest: int) -> List[int]:
        """Fault decision for one remote delivery.

        Returns a list of tick delays, one per copy to deliver: ``[0]``
        is a clean immediate delivery, ``[]`` a drop, ``[0, 0]`` a
        duplicate, ``[2]`` a delivery deferred by two barrier rounds.
        """
        plan = self.plan
        if plan.drop_rate and self._rng.random() < plan.drop_rate:
            self.stats.dropped += 1
            return []
        delays = [0]
        if plan.delay_rate and self._rng.random() < plan.delay_rate:
            delays[0] = 1 + int(self._rng.integers(plan.max_delay_ticks))
            self.stats.delayed += 1
        if plan.dup_rate and self._rng.random() < plan.dup_rate:
            delays.append(0)
            self.stats.duplicated += 1
        return delays

    def hold(self, delay_ticks: int, src: int, dest: int, item: Any) -> None:
        """Park a delayed delivery until ``delay_ticks`` ticks from now."""
        self._held += 1
        self._delayed.append(
            (self._clock + int(delay_ticks), self._held, src, dest, item))

    def tick(self) -> List[Tuple[int, int, Any]]:
        """Advance the clock one barrier round; return due deliveries."""
        self._clock += 1
        due = [(src, dest, item)
               for release, _i, src, dest, item in self._delayed
               if release <= self._clock]
        if due:
            self._delayed = [entry for entry in self._delayed
                             if entry[0] > self._clock]
        return due

    def pending_delayed(self) -> int:
        return len(self._delayed)

    def publish(self, registry) -> None:
        """Publish fault/recovery counters into a metrics registry.

        Emits the full ``faults.*`` counter family (zeros included, so
        fault-free and fault-injected runs expose the same names) plus a
        ``faults.pending_delayed`` gauge for in-flight delayed messages.
        """
        self.stats.publish(registry)
        registry.set_gauge("faults.pending_delayed",
                           float(len(self._delayed)))

    # -- per-flush decisions (consulted by YGMWorld._flush) ------------------

    def maybe_reorder(self, n_messages: int):
        """Permutation to apply to a flushed buffer, or ``None``."""
        plan = self.plan
        if (n_messages > 1 and plan.reorder_rate
                and self._rng.random() < plan.reorder_rate):
            self.stats.reordered_flushes += 1
            return self._rng.permutation(n_messages)
        return None

    def maybe_stall(self) -> float:
        """Seconds of straggler time to charge the flushing rank."""
        plan = self.plan
        if plan.stall_rate and self._rng.random() < plan.stall_rate:
            self.stats.stalls += 1
            return plan.stall_seconds
        return 0.0

    # -- rank crashes (consulted by the DNND driver) -------------------------

    def is_crashed(self, rank: int) -> bool:
        return rank in self.crashed

    def advance_iteration(self, iteration: int) -> List[int]:
        """Fire crashes scheduled for ``iteration``; returns new victims.

        Each scheduled crash fires exactly once — when the driver
        replays the iteration after recovering, the rank stays repaired.
        """
        newly = []
        for it, rank in self.plan.crashes:
            if it == iteration and (it, rank) not in self._fired_crashes:
                self._fired_crashes.add((it, rank))
                if rank not in self.crashed:
                    self.crashed.add(rank)
                    self.stats.crashes += 1
                    newly.append(rank)
        return newly

    def repair_all(self) -> None:
        """Resurrect every crashed rank (the replacement-node model) and
        drop any in-flight delayed traffic from the failed epoch."""
        if self.crashed:
            self.stats.recoveries += 1
        self.crashed.clear()
        self._delayed.clear()


def make_injector(plan: "FaultPlan | None", world_size: int):
    """``FaultInjector`` for ``plan``, or ``None`` for a null/absent plan
    with no crash schedule (the zero-overhead default path)."""
    if plan is None or plan.is_null:
        return None
    return FaultInjector(plan, world_size)
