"""Metall-style persistent object store (Section 4.6).

Metall is an mmap-backed C++ allocator that lets applications keep STL
data structures in a file system transparently; DNND uses it so the
construction executable can persist the k-NNG + dataset, and the
optimization/query executables can reopen them later without rebuilds.

This module reproduces that *lifecycle* in Python:

- ``MetallStore.create(path)`` — create a new datastore (error if one
  already exists, like ``metall::create_only``),
- ``MetallStore.open(path)`` / ``open_read_only`` — attach to an
  existing datastore (error if absent, like ``metall::open_only``),
- ``store[name] = obj`` — named-object construction
  (``construct<T>(name)``),
- ``store.snapshot()`` / close-on-exit — durability point,
- numpy arrays are stored as ``.npy`` and *memory-mapped on open*, which
  mirrors Metall's mmap-backed access (no full read at open time).

Arbitrary picklable objects are supported; numpy arrays and dicts of
arrays get the mmap fast path.

Durability: object files are written to a temporary name and atomically
renamed into place (a crash mid-write leaves the previous snapshot
intact, never a half-written object), and every save records the file's
size and SHA-256 in the manifest.  Loads always check the size;
``open(path, verify=True)`` additionally re-hashes the file before
trusting it.  Corruption surfaces as
:class:`~repro.errors.StoreCorruptError` — distinct from
:class:`~repro.errors.StoreError` absence/usage failures — so recovery
code can fall back to an older snapshot instead of crashing on a parse
error.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
from pathlib import Path
from typing import Any, Dict, Iterator, List

import numpy as np

from ..errors import StoreCorruptError, StoreError

_MANIFEST = "manifest.json"
_FORMAT_VERSION = 1


class MetallStore:
    """A directory-backed persistent object store.

    Use the classmethod constructors, not ``__init__`` directly::

        with MetallStore.create(path) as store:
            store["graph_ids"] = ids_array
        ...
        with MetallStore.open(path) as store:
            ids = store["graph_ids"]       # np.memmap-backed
    """

    def __init__(self, path: Path, writable: bool, manifest: Dict[str, Any],
                 verify: bool = False) -> None:
        self._path = Path(path)
        self._writable = writable
        self._manifest = manifest
        self._verify = verify
        self._cache: Dict[str, Any] = {}
        self._dirty: Dict[str, Any] = {}
        self._closed = False

    # -- lifecycle ------------------------------------------------------------

    @classmethod
    def create(cls, path) -> "MetallStore":
        """Create a fresh datastore (``metall::create_only`` semantics)."""
        p = Path(path)
        if p.exists():
            if not p.is_dir():
                raise StoreError(f"datastore path {p} exists and is not a directory")
            if (p / _MANIFEST).exists():
                raise StoreError(f"datastore already exists at {p}")
            if any(p.iterdir()):
                raise StoreError(f"datastore path {p} is a non-empty directory")
        p.mkdir(parents=True, exist_ok=True)
        manifest = {"format_version": _FORMAT_VERSION, "objects": {}}
        store = cls(p, writable=True, manifest=manifest)
        store._write_manifest()
        return store

    @classmethod
    def open(cls, path, verify: bool = False) -> "MetallStore":
        """Attach to an existing datastore (``metall::open_only``).

        ``verify=True`` re-hashes each object file against its recorded
        SHA-256 before trusting it (recovery paths use this: a restore
        must detect a corrupt checkpoint instead of restoring garbage).
        """
        return cls._open(path, writable=True, verify=verify)

    @classmethod
    def open_read_only(cls, path, verify: bool = False) -> "MetallStore":
        return cls._open(path, writable=False, verify=verify)

    @classmethod
    def _open(cls, path, writable: bool, verify: bool = False) -> "MetallStore":
        p = Path(path)
        mf = p / _MANIFEST
        if not mf.exists():
            raise StoreError(f"no datastore at {p}")
        try:
            manifest = json.loads(mf.read_text())
        except ValueError as exc:
            raise StoreCorruptError(
                f"datastore manifest at {mf} is unparseable: {exc}") from exc
        if manifest.get("format_version") != _FORMAT_VERSION:
            raise StoreError(
                f"datastore format version {manifest.get('format_version')} "
                f"!= supported {_FORMAT_VERSION}"
            )
        return cls(p, writable=writable, manifest=manifest, verify=verify)

    @staticmethod
    def exists(path) -> bool:
        return (Path(path) / _MANIFEST).exists()

    @staticmethod
    def remove(path) -> None:
        """Destroy a datastore directory (if present)."""
        p = Path(path)
        if p.exists():
            shutil.rmtree(p)

    def __enter__(self) -> "MetallStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Persist pending objects and detach."""
        if self._closed:
            return
        if self._writable:
            self.snapshot()
        self._closed = True

    # -- object access ----------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise StoreError("datastore is closed")

    def _check_writable(self) -> None:
        self._check_open()
        if not self._writable:
            raise StoreError("datastore opened read-only")

    def __setitem__(self, name: str, obj: Any) -> None:
        """Stage a named object; persisted at :meth:`snapshot`/close."""
        self._check_writable()
        _validate_name(name)
        self._dirty[name] = obj
        self._cache[name] = obj

    def __getitem__(self, name: str) -> Any:
        self._check_open()
        if name in self._cache:
            return self._cache[name]
        meta = self._manifest["objects"].get(name)
        if meta is None:
            raise StoreError(f"no object named {name!r} in datastore")
        obj = self._load(name, meta)
        self._cache[name] = obj
        return obj

    def __contains__(self, name: str) -> bool:
        self._check_open()
        return name in self._cache or name in self._manifest["objects"]

    def __delitem__(self, name: str) -> None:
        self._check_writable()
        self._cache.pop(name, None)
        self._dirty.pop(name, None)
        meta = self._manifest["objects"].pop(name, None)
        if meta is not None:
            for fname in meta.get("files", []):
                f = self._path / fname
                if f.exists():
                    f.unlink()
            self._write_manifest()

    def keys(self) -> List[str]:
        self._check_open()
        return sorted(set(self._manifest["objects"]) | set(self._dirty))

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    def __len__(self) -> int:
        return len(self.keys())

    # -- persistence ----------------------------------------------------------

    def snapshot(self) -> None:
        """Write all staged objects to disk and update the manifest —
        Metall's ``snapshot()`` durability point."""
        self._check_writable()
        for name, obj in self._dirty.items():
            self._manifest["objects"][name] = self._save(name, obj)
        self._dirty.clear()
        self._write_manifest()

    def _write_manifest(self) -> None:
        tmp = self._path / (_MANIFEST + ".tmp")
        tmp.write_text(json.dumps(self._manifest, indent=1, sort_keys=True))
        tmp.replace(self._path / _MANIFEST)

    def _save(self, name: str, obj: Any) -> Dict[str, Any]:
        if isinstance(obj, np.ndarray):
            kind, fname = "ndarray", f"{name}.npy"
            writer = lambda fh: np.save(fh, obj)  # noqa: E731
        elif isinstance(obj, dict) and obj and all(
            isinstance(v, np.ndarray) for v in obj.values()
        ):
            kind, fname = "npz", f"{name}.npz"
            writer = lambda fh: np.savez(fh, **obj)  # noqa: E731
        else:
            kind, fname = "pickle", f"{name}.pkl"
            writer = lambda fh: pickle.dump(  # noqa: E731
                obj, fh, protocol=pickle.HIGHEST_PROTOCOL)
        # Write-temp-then-rename: a crash mid-write must leave the
        # previous object version intact, never a truncated file the
        # next open would mmap/unpickle.
        fpath = self._path / fname
        tmp = self._path / (fname + ".tmp")
        with tmp.open("wb") as fh:
            writer(fh)
        digest, nbytes = _file_digest(tmp)
        os.replace(tmp, fpath)
        return {"kind": kind, "files": [fname],
                "bytes": nbytes, "sha256": digest}

    def _load(self, name: str, meta: Dict[str, Any]) -> Any:
        kind = meta["kind"]
        fname = meta["files"][0]
        fpath = self._path / fname
        if not fpath.exists():
            raise StoreError(f"datastore object file missing: {fpath}")
        # Size is checked on every load (truncation is the common
        # corruption); the full re-hash only under verify=True.
        # Manifests written before checksums were recorded skip both.
        expected = meta.get("bytes")
        if expected is not None and fpath.stat().st_size != expected:
            raise StoreCorruptError(
                f"object {name!r}: file {fpath} is {fpath.stat().st_size} "
                f"bytes, manifest records {expected} (truncated or "
                f"overwritten)")
        if self._verify and meta.get("sha256") is not None:
            digest, _ = _file_digest(fpath)
            if digest != meta["sha256"]:
                raise StoreCorruptError(
                    f"object {name!r}: SHA-256 mismatch for {fpath} "
                    f"(stored payload was modified or corrupted)")
        try:
            if kind == "ndarray":
                # mmap-backed, mirroring Metall's lazy paging.
                mode = "r+" if self._writable else "r"
                return np.load(fpath, mmap_mode=mode)
            if kind == "npz":
                with np.load(fpath) as z:
                    return {k: z[k] for k in z.files}
            if kind == "pickle":
                with fpath.open("rb") as fh:
                    return pickle.load(fh)
        except (ValueError, EOFError, OSError,
                pickle.UnpicklingError) as exc:
            raise StoreCorruptError(
                f"object {name!r}: cannot parse {fpath}: {exc}") from exc
        raise StoreError(f"unknown object kind {kind!r} for {name!r}")

    @property
    def path(self) -> Path:
        return self._path

    @property
    def writable(self) -> bool:
        return self._writable


def _file_digest(path: Path) -> tuple:
    """``(sha256_hexdigest, size_in_bytes)`` of a file, streamed."""
    h = hashlib.sha256()
    nbytes = 0
    with path.open("rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            h.update(chunk)
            nbytes += len(chunk)
    return h.hexdigest(), nbytes


def _validate_name(name: str) -> None:
    if not name or "/" in name or "\\" in name or name.startswith("."):
        raise StoreError(f"invalid object name {name!r}")
