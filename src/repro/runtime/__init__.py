"""Simulated distributed runtime (S2-S6).

The paper runs DNND on an MPI cluster through two LLNL libraries:

- **YGM** — buffered, fire-and-forget asynchronous RPC with a global
  barrier (Section 4.1), and
- **Metall** — a persistent memory allocator (Section 4.6).

This subpackage provides drop-in *simulated* equivalents that preserve
the semantics and — crucially for Figure 4 — measure every message:

- :mod:`.transports` — the Transport seam: per-rank mailboxes and the
  collectives DNND needs, as the deterministic simulated cluster
  (``transports/sim.py``, still importable from :mod:`.simmpi`) or the
  thread-safe shared-memory backend (``transports/local.py``),
- :mod:`.ygm` — the YGM-style async RPC layer with per-destination
  buffering, flush thresholds, barrier, and per-type instrumentation,
  talking only to the Transport protocol,
- :mod:`.netmodel` — an alpha-beta network + compute cost model giving
  each phase a simulated duration (Figure 3's y-axis),
- :mod:`.partition` — hash partitioning of vertices over ranks
  (Section 4: "based on the hash values of the vertex IDs"),
- :mod:`.metall` — a Metall-style persistent object store,
- :mod:`.instrumentation` — message statistics by type and phase,
- :mod:`.metrics` — the backend-agnostic observability surface:
  thread-safe counters/gauges/timers/histograms, wall-clock phase
  spans, JSON and Chrome-trace exporters,
- :mod:`.faults` — deterministic fault injection (message loss /
  duplication / reordering / delay, stragglers, rank crashes) that the
  reliable-delivery mode and checkpoint recovery are tested against.
"""

from .faults import FaultInjector, FaultPlan, make_injector
from .instrumentation import FaultStats, MessageStats, TypeStats
from .metrics import (
    MetricsRegistry,
    NullMetricsRegistry,
    NULL_METRICS,
    SpanRecord,
    deterministic_projection,
)
from .netmodel import NetworkModel, CostLedger, NullLedger
from .partition import HashPartitioner, BlockPartitioner, Partitioner
from .transports import LocalTransport, SimCluster, Transport
from .ygm import YGMWorld, RankContext
from .metall import MetallStore
from .containers import DistributedBag, DistributedCounter, DistributedMap
from .tracing import RuntimeTracer, attach_tracer

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "make_injector",
    "MessageStats",
    "TypeStats",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "SpanRecord",
    "deterministic_projection",
    "NetworkModel",
    "CostLedger",
    "NullLedger",
    "HashPartitioner",
    "BlockPartitioner",
    "Partitioner",
    "Transport",
    "SimCluster",
    "LocalTransport",
    "YGMWorld",
    "RankContext",
    "MetallStore",
    "DistributedBag",
    "DistributedCounter",
    "DistributedMap",
    "RuntimeTracer",
    "attach_tracer",
]
