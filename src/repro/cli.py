"""Command-line interface mirroring the paper's executables.

Section 5.1.3: "There are two DNND execution files: one for k-NNG
construction and the other for graph optimization."  Plus the query
program of Section 5.3.1.  This CLI exposes the same three stages —
each persisting through / reading from the Metall-style store — and two
introspection helpers:

- ``repro construct`` — build a k-NNG with DNND on a simulated cluster
  and persist graph + dataset,
- ``repro repartition`` — build, then re-home rows with the post-build
  locality pass (explicit assignment from the graph) and report the
  edge-cut improvement,
- ``repro optimize``  — reopen a store, apply the Section 4.5
  optimizations, persist the searchable graph,
- ``repro query``     — reopen a store and run queries (epsilon dial,
  optional threads),
- ``repro datasets``  — list the Table 1 stand-ins,
- ``repro experiments`` — list the reproduced tables/figures and their
  benchmark targets,
- ``repro stats``     — pretty-print a metrics snapshot written by
  ``construct --metrics-out``.

Observability: ``construct`` (and ``resume``) accept ``--metrics-out
out.json`` to dump the backend-agnostic metrics snapshot and
``--trace-out out.trace.json`` to dump a Chrome trace-event file
loadable in ``ui.perfetto.dev`` / ``chrome://tracing``.

Example session::

    repro construct --dataset deep1b --n 2000 --k 10 --nodes 4 \
        --store /tmp/idx
    repro optimize --store /tmp/idx --pruning-factor 1.5
    repro query --store /tmp/idx --n-queries 100 --epsilon 0.2
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np

from . import __version__
from .config import ClusterConfig, CommOptConfig, DNNDConfig, NNDescentConfig
from .core.dnnd import DNND, optimize_from_store
from .core.graph import AdjacencyGraph
from .core.search import KNNGraphSearcher
from .datasets.ann_benchmarks import PAPER_DATASETS, load_dataset
from .errors import ReproError
from .eval.experiments import EXPERIMENTS
from .eval.parallel_query import ParallelQueryEngine
from .eval.tables import ascii_table
from .runtime.faults import FaultPlan
from .runtime.metall import MetallStore
from .runtime.partition import PARTITIONER_NAMES, make_partitioner
from .utils.timing import format_duration


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DNND: distributed NN-Descent (SC-W 2023 reproduction)",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("construct", help="build a k-NNG with DNND (executable 1)")
    p.add_argument("--dataset", default="deep1b",
                   choices=sorted(PAPER_DATASETS))
    p.add_argument("--n", type=int, default=2000, help="stand-in size")
    p.add_argument("--k", type=int, default=10)
    p.add_argument("--rho", type=float, default=0.8)
    p.add_argument("--delta", type=float, default=0.001)
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--procs-per-node", type=int, default=2)
    p.add_argument("--batch-size", type=int, default=1 << 13,
                   help="Section 4.4 global requests per barrier (0=off)")
    p.add_argument("--unoptimized-comm", action="store_true",
                   help="use the Figure 1a message pattern")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--partitioner", choices=PARTITIONER_NAMES,
                   default="hash",
                   help="row placement policy: splitmix64 hashing "
                        "(hash, default, bit-identical with earlier "
                        "releases), contiguous blocks (block), or "
                        "locality-aware rp-tree leaf packing (rptree)")
    p.add_argument("--store", required=True, help="datastore directory")
    p.add_argument("--checkpoint", default=None,
                   help="checkpoint store path (enables crash recovery)")
    p.add_argument("--checkpoint-every", type=int, default=0,
                   help="iterations between checkpoints (0 = off)")
    p.add_argument("--fault-drop-rate", type=float, default=0.0,
                   help="inject: fraction of remote messages dropped")
    p.add_argument("--fault-dup-rate", type=float, default=0.0,
                   help="inject: fraction of remote messages duplicated")
    p.add_argument("--fault-reorder-rate", type=float, default=0.0,
                   help="inject: fraction of flushes delivered out of order")
    p.add_argument("--fault-delay-rate", type=float, default=0.0,
                   help="inject: fraction of remote messages delayed")
    p.add_argument("--fault-stall-rate", type=float, default=0.0,
                   help="inject: fraction of flushes hit by a rank stall")
    p.add_argument("--fault-seed", type=int, default=0,
                   help="seed for the deterministic fault plan")
    p.add_argument("--fault-crash", action="append", default=[],
                   metavar="RANK:ITERATION",
                   help="crash RANK at ITERATION (repeatable); requires "
                        "--checkpoint for recovery")
    p.add_argument("--reliable", action="store_true",
                   help="ack/retransmit delivery (tolerates drop/dup "
                        "faults; works on both backends)")
    p.add_argument("--max-retries", type=int, default=32,
                   help="retransmit budget per message in --reliable mode")
    p.add_argument("--failure-timeout", type=int, default=256,
                   help="heartbeat threshold in delivery rounds before a "
                        "silent rank is declared failed (--reliable mode; "
                        "0 disables detection-by-timeout)")
    p.add_argument("--degraded", action="store_true",
                   help="on rank failure, continue the build without the "
                        "dead ranks and repair their neighborhoods when "
                        "they are re-admitted (instead of checkpoint "
                        "rollback)")
    p.add_argument("--max-recovery-attempts", type=int, default=8,
                   help="consecutive recovery cycles tolerated before the "
                        "failure propagates")
    p.add_argument("--backend", choices=("sim", "parallel", "process"),
                   default=None,
                   help="execution backend: deterministic cost-modeled "
                        "simulation (sim, default), shared-memory "
                        "parallel executor, or multi-process workers "
                        "with the dataset in shared memory (process); "
                        "crash injection and recovery work everywhere, "
                        "network fault plans / reliable delivery / the "
                        "cost model are sim-only; default honours "
                        "REPRO_BACKEND")
    p.add_argument("--kernel", choices=("rowwise", "blocked"),
                   default=None,
                   help="batched distance-kernel implementation: "
                        "bit-exact per-row kernels (rowwise, default) "
                        "or tiled-GEMM kernels (blocked; recall-parity "
                        "gated for metrics that reassociate reductions); "
                        "default honours REPRO_KERNEL")
    p.add_argument("--workers", type=int, default=0,
                   help="thread count (--backend parallel) or process "
                        "count (--backend process); 0 = auto: "
                        "REPRO_WORKERS or the core count")
    p.add_argument("--sanitize", action="store_true",
                   help="run under the runtime ownership sanitizer "
                        "(repro.analysis): cross-rank state access raises")
    p.add_argument("--metrics-out", default=None, metavar="FILE",
                   help="write the metrics snapshot (JSON) here; view "
                        "with `repro stats FILE`")
    p.add_argument("--trace-out", default=None, metavar="FILE",
                   help="write a Chrome trace-event file here (load in "
                        "ui.perfetto.dev)")
    p.add_argument("--no-metrics", action="store_true",
                   help="disable the metrics registry (a shared no-op "
                        "registry is used instead)")
    p.set_defaults(func=cmd_construct)

    p = sub.add_parser("resume",
                       help="resume an interrupted construct from a checkpoint")
    p.add_argument("--dataset", default="deep1b",
                   choices=sorted(PAPER_DATASETS))
    p.add_argument("--n", type=int, default=2000)
    p.add_argument("--seed", type=int, default=0,
                   help="must match the interrupted run's dataset seed")
    p.add_argument("--checkpoint", required=True)
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--procs-per-node", type=int, default=2)
    p.add_argument("--partitioner", choices=PARTITIONER_NAMES,
                   default=None,
                   help="assert the checkpoint was built with this "
                        "partitioner (a mismatch aborts instead of "
                        "silently re-homing rows)")
    p.add_argument("--store", default=None,
                   help="persist the finished graph here")
    p.add_argument("--backend", choices=("sim", "parallel", "process"),
                   default=None,
                   help="execution backend for the resumed build")
    p.add_argument("--workers", type=int, default=0,
                   help="thread count (parallel) or process count "
                        "(process); 0 = auto")
    p.add_argument("--metrics-out", default=None, metavar="FILE",
                   help="write the metrics snapshot (JSON) here")
    p.add_argument("--trace-out", default=None, metavar="FILE",
                   help="write a Chrome trace-event file here")
    p.set_defaults(func=cmd_resume)

    p = sub.add_parser(
        "repartition",
        help="build a k-NNG, then re-home rows for graph locality")
    p.add_argument("--dataset", default="deep1b",
                   choices=sorted(PAPER_DATASETS))
    p.add_argument("--n", type=int, default=2000, help="stand-in size")
    p.add_argument("--k", type=int, default=10)
    p.add_argument("--rho", type=float, default=0.8)
    p.add_argument("--delta", type=float, default=0.001)
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--procs-per-node", type=int, default=2)
    p.add_argument("--batch-size", type=int, default=1 << 13)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--partitioner", choices=PARTITIONER_NAMES,
                   default="hash",
                   help="initial placement for the build phase; the "
                        "repartition pass then computes an explicit "
                        "locality assignment from the built graph")
    p.add_argument("--store", default=None,
                   help="persist the re-homed graph + dataset here")
    p.add_argument("--backend", choices=("sim", "parallel", "process"),
                   default=None,
                   help="execution backend (default honours REPRO_BACKEND)")
    p.add_argument("--workers", type=int, default=0,
                   help="thread/process count; 0 = auto")
    p.add_argument("--metrics-out", default=None, metavar="FILE",
                   help="write the metrics snapshot (JSON) here")
    p.add_argument("--trace-out", default=None, metavar="FILE",
                   help="write a Chrome trace-event file here")
    p.set_defaults(func=cmd_repartition)

    p = sub.add_parser("optimize", help="Section 4.5 optimizations (executable 2)")
    p.add_argument("--store", required=True)
    p.add_argument("--pruning-factor", type=float, default=1.5,
                   help="m: per-vertex degree cap is k*m")
    p.set_defaults(func=cmd_optimize)

    p = sub.add_parser("query", help="run ANN queries against a store")
    p.add_argument("--store", required=True)
    p.add_argument("--n-queries", type=int, default=100)
    p.add_argument("--l", type=int, default=10)
    p.add_argument("--epsilon", type=float, default=0.1)
    p.add_argument("--threads", type=int, default=1)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_query)

    p = sub.add_parser("stats",
                       help="pretty-print a --metrics-out snapshot")
    p.add_argument("metrics_file", help="JSON file written by "
                                        "`repro construct --metrics-out`")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("datasets", help="list the Table 1 dataset stand-ins")
    p.set_defaults(func=cmd_datasets)

    p = sub.add_parser("experiments",
                       help="list reproduced tables/figures and benchmarks")
    p.set_defaults(func=cmd_experiments)

    return parser


def _fault_plan_from_args(args: argparse.Namespace) -> Optional[FaultPlan]:
    crashes = []
    for spec in args.fault_crash:
        try:
            rank_s, iter_s = spec.split(":", 1)
            crashes.append((int(iter_s), int(rank_s)))
        except ValueError:
            raise ReproError(
                f"--fault-crash wants RANK:ITERATION, got {spec!r}") from None
    plan = FaultPlan(
        seed=args.fault_seed,
        drop_rate=args.fault_drop_rate,
        dup_rate=args.fault_dup_rate,
        reorder_rate=args.fault_reorder_rate,
        delay_rate=args.fault_delay_rate,
        stall_rate=args.fault_stall_rate,
        crashes=tuple(crashes),
    )
    return None if plan.is_null else plan


def _export_observability(result, metrics_out: Optional[str],
                          trace_out: Optional[str]) -> None:
    """Write the run's metrics snapshot / Chrome trace where asked."""
    import json

    if metrics_out:
        with open(metrics_out, "w", encoding="utf-8") as f:
            json.dump(result.metrics.snapshot(), f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"metrics snapshot written to {metrics_out} "
              f"(pretty-print with `repro stats {metrics_out}`)")
    if trace_out:
        with open(trace_out, "w", encoding="utf-8") as f:
            json.dump(result.metrics.to_chrome_trace(), f)
            f.write("\n")
        print(f"chrome trace written to {trace_out} "
              f"(load in ui.perfetto.dev)")


def _partitioner_from_args(args: argparse.Namespace, data,
                           cluster: ClusterConfig):
    """``--partitioner`` → a Partitioner, or None for the hash default.

    Returning None for ``hash`` keeps the construct path byte-identical
    with releases that predate the flag (DNND builds its own
    HashPartitioner).
    """
    if args.partitioner == "hash":
        return None
    return make_partitioner(args.partitioner, len(data),
                            cluster.world_size, data=np.asarray(data),
                            seed=args.seed)


def cmd_construct(args: argparse.Namespace) -> int:
    data, spec = load_dataset(args.dataset, n=args.n, seed=args.seed)
    comm = (CommOptConfig.unoptimized() if args.unoptimized_comm
            else CommOptConfig.optimized())
    cfg = DNNDConfig(
        nnd=NNDescentConfig(k=args.k, rho=args.rho, delta=args.delta,
                            metric=spec.metric, seed=args.seed),
        comm_opts=comm,
        batch_size=args.batch_size,
        backend=args.backend,
        kernel=args.kernel,
        workers=args.workers,
        metrics=not args.no_metrics,
    )
    if args.no_metrics and (args.metrics_out or args.trace_out):
        raise ReproError("--metrics-out/--trace-out require metrics; "
                         "drop --no-metrics")
    fault_plan = _fault_plan_from_args(args)
    cluster = ClusterConfig(nodes=args.nodes,
                            procs_per_node=args.procs_per_node)
    dnnd = DNND(data, cfg, cluster=cluster,
        partitioner=_partitioner_from_args(args, data, cluster),
        fault_plan=fault_plan, reliable=args.reliable,
        max_retries=args.max_retries,
        failure_timeout=args.failure_timeout or None,
        sanitize=True if args.sanitize else None)
    result = dnnd.build(store_path=args.store,
                        checkpoint_path=args.checkpoint,
                        checkpoint_every=args.checkpoint_every,
                        degraded=args.degraded,
                        max_recovery_attempts=args.max_recovery_attempts)
    print(f"constructed {args.dataset} k={args.k}: "
          f"{result.iterations} iterations, converged={result.converged}")
    print(f"simulated time: {format_duration(result.sim_seconds)} "
          f"on {result.world_size} ranks")
    print(result.message_stats.format_table("messages"))
    if result.fault_stats.any_faults() or result.recoveries:
        print(result.fault_stats.format_line())
        print(f"crash recoveries: {result.recoveries}")
    if result.degraded_ranks:
        print("degraded ranks (excluded, then repaired): "
              f"{list(result.degraded_ranks)}")
    _export_observability(result, args.metrics_out, args.trace_out)
    print(f"store written to {args.store}")
    return 0


def cmd_resume(args: argparse.Namespace) -> int:
    data, _spec = load_dataset(args.dataset, n=args.n, seed=args.seed)
    result = DNND.resume(
        data, args.checkpoint,
        cluster=ClusterConfig(nodes=args.nodes,
                              procs_per_node=args.procs_per_node),
        store_path=args.store,
        backend=args.backend, workers=args.workers,
        partitioner=args.partitioner)
    print(f"resumed build finished: {result.iterations} total iterations, "
          f"converged={result.converged}")
    _export_observability(result, args.metrics_out, args.trace_out)
    if args.store:
        print(f"store written to {args.store}")
    return 0


def cmd_repartition(args: argparse.Namespace) -> int:
    data, spec = load_dataset(args.dataset, n=args.n, seed=args.seed)
    cfg = DNNDConfig(
        nnd=NNDescentConfig(k=args.k, rho=args.rho, delta=args.delta,
                            metric=spec.metric, seed=args.seed),
        batch_size=args.batch_size,
        backend=args.backend,
        workers=args.workers,
    )
    cluster = ClusterConfig(nodes=args.nodes,
                            procs_per_node=args.procs_per_node)
    dnnd = DNND(data, cfg, cluster=cluster,
                partitioner=_partitioner_from_args(args, data, cluster))
    result = dnnd.build()
    built_under = dnnd.partitioner.kind
    before = dnnd.metrics.snapshot()["gauges"].get("partition.edge_cut")
    dnnd.repartition()
    after = dnnd.metrics.snapshot()["gauges"].get("partition.edge_cut")
    print(f"built {args.dataset} k={args.k} under {built_under}: "
          f"{result.iterations} iterations, converged={result.converged}")
    if before is not None and after is not None:
        print(f"edge cut: {before:.4f} -> {after:.4f} "
              f"({dnnd.partitioner.kind}/{dnnd.partitioner.source} "
              f"assignment, imbalance "
              f"{dnnd.partitioner.max_imbalance():.3f})")
    if args.store:
        dnnd._persist(args.store, result)
        print(f"store written to {args.store}")
    _export_observability(result, args.metrics_out, args.trace_out)
    return 0


def cmd_optimize(args: argparse.Namespace) -> int:
    adjacency = optimize_from_store(args.store,
                                    pruning_factor=args.pruning_factor)
    print(f"optimized graph: {adjacency.n_edges:,} edges, "
          f"max degree {int(adjacency.degrees().max())}")
    print(f"store updated at {args.store}")
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    with MetallStore.open_read_only(args.store) as store:
        if "optimized_graph" in store:
            graph = AdjacencyGraph.from_arrays(store["optimized_graph"])
        else:
            from .core.graph import KNNGraph
            graph = KNNGraph.from_arrays(store["graph"]).to_adjacency()
            print("note: store has no optimized graph; run `repro optimize`")
        dataset = store["dataset"]
        if isinstance(dataset, np.memmap) or isinstance(dataset, np.ndarray):
            dataset = np.asarray(dataset)
        metric = store["meta"]["metric"]

    rng = np.random.default_rng(args.seed)
    idx = rng.choice(len(dataset), size=min(args.n_queries, len(dataset)),
                     replace=False)
    if isinstance(dataset, np.ndarray):
        queries = dataset[idx]
    else:
        queries = [dataset[int(i)] for i in idx]

    searcher = KNNGraphSearcher(graph, dataset, metric=metric, seed=args.seed)
    engine = ParallelQueryEngine(searcher, n_threads=args.threads)
    import time
    start = time.perf_counter()
    ids, _dists, stats = engine.query_batch(queries, l=args.l,
                                            epsilon=args.epsilon)
    elapsed = time.perf_counter() - start
    # Self-queries should return themselves first: a cheap sanity recall.
    self_hits = sum(1 for row, q in zip(ids, idx) if int(q) in row)
    print(f"{stats['n_queries']} queries, epsilon={args.epsilon}, "
          f"threads={stats['n_threads']}")
    print(f"throughput: {stats['n_queries'] / max(elapsed, 1e-9):.0f} qps, "
          f"{stats['mean_distance_evals']:.0f} distance evals/query")
    print(f"self-recall: {self_hits}/{len(idx)}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Pretty-print a metrics snapshot (``--metrics-out`` JSON)."""
    import json

    try:
        with open(args.metrics_file, encoding="utf-8") as f:
            snap = json.load(f)
    except (OSError, ValueError) as exc:
        raise ReproError(f"cannot read metrics file: {exc}") from None
    schema = snap.get("schema")
    if schema != "repro.metrics/1":
        raise ReproError(
            f"{args.metrics_file} is not a repro metrics snapshot "
            f"(schema={schema!r})")
    if not snap.get("enabled", False):
        print("metrics were disabled for this run (empty snapshot)")
        return 0

    counters = snap.get("counters", {})
    gauges = snap.get("gauges", {})
    timers = snap.get("timers", {})

    phase_rows = []
    for name in sorted(timers):
        if not name.startswith("phase."):
            continue
        phase = name[len("phase."):]
        t = timers[name]
        sim = gauges.get(f"sim.phase.{phase}.seconds")
        phase_rows.append([phase, t["count"], f"{t['seconds']:.6f}",
                           f"{sim:.6f}" if sim is not None else "-"])
    if phase_rows:
        print(ascii_table(["phase", "spans", "wall seconds", "sim seconds"],
                          phase_rows, title="phase timers"))
        print()

    msg_rows = [[t, f"{counters[f'messages.sent.{t}']:,}",
                 f"{counters.get(f'messages.bytes.{t}', 0):,}"]
                for t in sorted(c[len("messages.sent."):] for c in counters
                                if c.startswith("messages.sent."))]
    if msg_rows:
        print(ascii_table(["type", "messages", "bytes"], msg_rows,
                          title="messages by type"))
        print()

    skip = ("messages.sent.", "messages.bytes.")
    other_rows = [[name, f"{counters[name]:,}"]
                  for name in sorted(counters)
                  if not name.startswith(skip)
                  and not (name.startswith("faults.") and counters[name] == 0)]
    if other_rows:
        print(ascii_table(["counter", "value"], other_rows,
                          title="runtime counters"))
        print()

    gauge_rows = [[name, f"{gauges[name]:.6f}"] for name in sorted(gauges)
                  if not name.startswith("sim.phase.")]
    if gauge_rows:
        print(ascii_table(["gauge", "value"], gauge_rows, title="gauges"))
    return 0


def cmd_datasets(args: argparse.Namespace) -> int:
    rows = [[s.name, s.dim, f"{s.paper_entries:,}", s.metric, s.default_n]
            for s in PAPER_DATASETS.values()]
    print(ascii_table(
        ["dataset", "paper dim", "paper entries", "metric", "stand-in n"],
        rows, title="Table 1 datasets and their stand-ins"))
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    rows = [[e.exp_id, e.paper_ref, e.bench] for e in EXPERIMENTS.values()]
    print(ascii_table(["id", "paper artifact", "benchmark"], rows,
                      title="reproduced experiments"))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
