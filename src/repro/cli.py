"""Command-line interface mirroring the paper's executables.

Section 5.1.3: "There are two DNND execution files: one for k-NNG
construction and the other for graph optimization."  Plus the query
program of Section 5.3.1.  This CLI exposes the same three stages —
each persisting through / reading from the Metall-style store — and two
introspection helpers:

- ``repro construct`` — build a k-NNG with DNND on a simulated cluster
  and persist graph + dataset,
- ``repro optimize``  — reopen a store, apply the Section 4.5
  optimizations, persist the searchable graph,
- ``repro query``     — reopen a store and run queries (epsilon dial,
  optional threads),
- ``repro datasets``  — list the Table 1 stand-ins,
- ``repro experiments`` — list the reproduced tables/figures and their
  benchmark targets.

Example session::

    repro construct --dataset deep1b --n 2000 --k 10 --nodes 4 \
        --store /tmp/idx
    repro optimize --store /tmp/idx --pruning-factor 1.5
    repro query --store /tmp/idx --n-queries 100 --epsilon 0.2
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np

from . import __version__
from .config import ClusterConfig, CommOptConfig, DNNDConfig, NNDescentConfig
from .core.dnnd import DNND, optimize_from_store
from .core.graph import AdjacencyGraph
from .core.search import KNNGraphSearcher
from .datasets.ann_benchmarks import PAPER_DATASETS, load_dataset
from .errors import ReproError
from .eval.experiments import EXPERIMENTS
from .eval.parallel_query import ParallelQueryEngine
from .eval.tables import ascii_table
from .runtime.faults import FaultPlan
from .runtime.metall import MetallStore
from .utils.timing import format_duration


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DNND: distributed NN-Descent (SC-W 2023 reproduction)",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("construct", help="build a k-NNG with DNND (executable 1)")
    p.add_argument("--dataset", default="deep1b",
                   choices=sorted(PAPER_DATASETS))
    p.add_argument("--n", type=int, default=2000, help="stand-in size")
    p.add_argument("--k", type=int, default=10)
    p.add_argument("--rho", type=float, default=0.8)
    p.add_argument("--delta", type=float, default=0.001)
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--procs-per-node", type=int, default=2)
    p.add_argument("--batch-size", type=int, default=1 << 13,
                   help="Section 4.4 global requests per barrier (0=off)")
    p.add_argument("--unoptimized-comm", action="store_true",
                   help="use the Figure 1a message pattern")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--store", required=True, help="datastore directory")
    p.add_argument("--checkpoint", default=None,
                   help="checkpoint store path (enables crash recovery)")
    p.add_argument("--checkpoint-every", type=int, default=0,
                   help="iterations between checkpoints (0 = off)")
    p.add_argument("--fault-drop-rate", type=float, default=0.0,
                   help="inject: fraction of remote messages dropped")
    p.add_argument("--fault-dup-rate", type=float, default=0.0,
                   help="inject: fraction of remote messages duplicated")
    p.add_argument("--fault-reorder-rate", type=float, default=0.0,
                   help="inject: fraction of flushes delivered out of order")
    p.add_argument("--fault-delay-rate", type=float, default=0.0,
                   help="inject: fraction of remote messages delayed")
    p.add_argument("--fault-stall-rate", type=float, default=0.0,
                   help="inject: fraction of flushes hit by a rank stall")
    p.add_argument("--fault-seed", type=int, default=0,
                   help="seed for the deterministic fault plan")
    p.add_argument("--fault-crash", action="append", default=[],
                   metavar="RANK:ITERATION",
                   help="crash RANK at ITERATION (repeatable); requires "
                        "--checkpoint for recovery")
    p.add_argument("--reliable", action="store_true",
                   help="ack/retransmit delivery (tolerates drop/dup faults)")
    p.add_argument("--max-retries", type=int, default=32,
                   help="retransmit budget per message in --reliable mode")
    p.add_argument("--backend", choices=("sim", "parallel"), default=None,
                   help="execution backend: deterministic cost-modeled "
                        "simulation (sim, default) or shared-memory "
                        "parallel executor (no cost ledger / faults); "
                        "default honours REPRO_BACKEND")
    p.add_argument("--workers", type=int, default=0,
                   help="thread count for --backend parallel "
                        "(0 = auto: REPRO_WORKERS or the core count)")
    p.add_argument("--sanitize", action="store_true",
                   help="run under the runtime ownership sanitizer "
                        "(repro.analysis): cross-rank state access raises")
    p.set_defaults(func=cmd_construct)

    p = sub.add_parser("resume",
                       help="resume an interrupted construct from a checkpoint")
    p.add_argument("--dataset", default="deep1b",
                   choices=sorted(PAPER_DATASETS))
    p.add_argument("--n", type=int, default=2000)
    p.add_argument("--seed", type=int, default=0,
                   help="must match the interrupted run's dataset seed")
    p.add_argument("--checkpoint", required=True)
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--procs-per-node", type=int, default=2)
    p.add_argument("--store", default=None,
                   help="persist the finished graph here")
    p.add_argument("--backend", choices=("sim", "parallel"), default=None,
                   help="execution backend for the resumed build")
    p.add_argument("--workers", type=int, default=0,
                   help="thread count for --backend parallel (0 = auto)")
    p.set_defaults(func=cmd_resume)

    p = sub.add_parser("optimize", help="Section 4.5 optimizations (executable 2)")
    p.add_argument("--store", required=True)
    p.add_argument("--pruning-factor", type=float, default=1.5,
                   help="m: per-vertex degree cap is k*m")
    p.set_defaults(func=cmd_optimize)

    p = sub.add_parser("query", help="run ANN queries against a store")
    p.add_argument("--store", required=True)
    p.add_argument("--n-queries", type=int, default=100)
    p.add_argument("--l", type=int, default=10)
    p.add_argument("--epsilon", type=float, default=0.1)
    p.add_argument("--threads", type=int, default=1)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_query)

    p = sub.add_parser("datasets", help="list the Table 1 dataset stand-ins")
    p.set_defaults(func=cmd_datasets)

    p = sub.add_parser("experiments",
                       help="list reproduced tables/figures and benchmarks")
    p.set_defaults(func=cmd_experiments)

    return parser


def _fault_plan_from_args(args: argparse.Namespace) -> Optional[FaultPlan]:
    crashes = []
    for spec in args.fault_crash:
        try:
            rank_s, iter_s = spec.split(":", 1)
            crashes.append((int(iter_s), int(rank_s)))
        except ValueError:
            raise ReproError(
                f"--fault-crash wants RANK:ITERATION, got {spec!r}") from None
    plan = FaultPlan(
        seed=args.fault_seed,
        drop_rate=args.fault_drop_rate,
        dup_rate=args.fault_dup_rate,
        reorder_rate=args.fault_reorder_rate,
        delay_rate=args.fault_delay_rate,
        stall_rate=args.fault_stall_rate,
        crashes=tuple(crashes),
    )
    return None if plan.is_null else plan


def cmd_construct(args: argparse.Namespace) -> int:
    data, spec = load_dataset(args.dataset, n=args.n, seed=args.seed)
    comm = (CommOptConfig.unoptimized() if args.unoptimized_comm
            else CommOptConfig.optimized())
    cfg = DNNDConfig(
        nnd=NNDescentConfig(k=args.k, rho=args.rho, delta=args.delta,
                            metric=spec.metric, seed=args.seed),
        comm_opts=comm,
        batch_size=args.batch_size,
        backend=args.backend,
        workers=args.workers,
    )
    fault_plan = _fault_plan_from_args(args)
    dnnd = DNND(data, cfg, cluster=ClusterConfig(
        nodes=args.nodes, procs_per_node=args.procs_per_node),
        fault_plan=fault_plan, reliable=args.reliable,
        max_retries=args.max_retries,
        sanitize=True if args.sanitize else None)
    result = dnnd.build(store_path=args.store,
                        checkpoint_path=args.checkpoint,
                        checkpoint_every=args.checkpoint_every)
    print(f"constructed {args.dataset} k={args.k}: "
          f"{result.iterations} iterations, converged={result.converged}")
    print(f"simulated time: {format_duration(result.sim_seconds)} "
          f"on {result.world_size} ranks")
    print(result.message_stats.format_table("messages"))
    if result.fault_stats.any_faults() or result.recoveries:
        print(result.fault_stats.format_line())
        print(f"crash recoveries: {result.recoveries}")
    print(f"store written to {args.store}")
    return 0


def cmd_resume(args: argparse.Namespace) -> int:
    data, _spec = load_dataset(args.dataset, n=args.n, seed=args.seed)
    result = DNND.resume(
        data, args.checkpoint,
        cluster=ClusterConfig(nodes=args.nodes,
                              procs_per_node=args.procs_per_node),
        store_path=args.store,
        backend=args.backend, workers=args.workers)
    print(f"resumed build finished: {result.iterations} total iterations, "
          f"converged={result.converged}")
    if args.store:
        print(f"store written to {args.store}")
    return 0


def cmd_optimize(args: argparse.Namespace) -> int:
    adjacency = optimize_from_store(args.store,
                                    pruning_factor=args.pruning_factor)
    print(f"optimized graph: {adjacency.n_edges:,} edges, "
          f"max degree {int(adjacency.degrees().max())}")
    print(f"store updated at {args.store}")
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    with MetallStore.open_read_only(args.store) as store:
        if "optimized_graph" in store:
            graph = AdjacencyGraph.from_arrays(store["optimized_graph"])
        else:
            from .core.graph import KNNGraph
            graph = KNNGraph.from_arrays(store["graph"]).to_adjacency()
            print("note: store has no optimized graph; run `repro optimize`")
        dataset = store["dataset"]
        if isinstance(dataset, np.memmap) or isinstance(dataset, np.ndarray):
            dataset = np.asarray(dataset)
        metric = store["meta"]["metric"]

    rng = np.random.default_rng(args.seed)
    idx = rng.choice(len(dataset), size=min(args.n_queries, len(dataset)),
                     replace=False)
    if isinstance(dataset, np.ndarray):
        queries = dataset[idx]
    else:
        queries = [dataset[int(i)] for i in idx]

    searcher = KNNGraphSearcher(graph, dataset, metric=metric, seed=args.seed)
    engine = ParallelQueryEngine(searcher, n_threads=args.threads)
    import time
    start = time.perf_counter()
    ids, _dists, stats = engine.query_batch(queries, l=args.l,
                                            epsilon=args.epsilon)
    elapsed = time.perf_counter() - start
    # Self-queries should return themselves first: a cheap sanity recall.
    self_hits = sum(1 for row, q in zip(ids, idx) if int(q) in row)
    print(f"{stats['n_queries']} queries, epsilon={args.epsilon}, "
          f"threads={stats['n_threads']}")
    print(f"throughput: {stats['n_queries'] / max(elapsed, 1e-9):.0f} qps, "
          f"{stats['mean_distance_evals']:.0f} distance evals/query")
    print(f"self-recall: {self_hits}/{len(idx)}")
    return 0


def cmd_datasets(args: argparse.Namespace) -> int:
    rows = [[s.name, s.dim, f"{s.paper_entries:,}", s.metric, s.default_n]
            for s in PAPER_DATASETS.values()]
    print(ascii_table(
        ["dataset", "paper dim", "paper entries", "metric", "stand-in n"],
        rows, title="Table 1 datasets and their stand-ins"))
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    rows = [[e.exp_id, e.paper_ref, e.bench] for e in EXPERIMENTS.values()]
    print(ascii_table(["id", "paper artifact", "benchmark"], rows,
                      title="reproduced experiments"))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
