"""Synthetic data generators.

Clustered Gaussian mixtures are the workhorse: real embedding datasets
(GloVe, DEEP, SIFT/BigANN) are strongly clustered with moderate local
intrinsic dimension, and NN-Descent/HNSW behaviour (convergence rate,
recall-vs-work trade-off) is driven by exactly those properties, not by
the raw values.  ``power_law_sets`` models Kosarak-style transaction
data for the Jaccard metric.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..distances.sparse import SparseDataset
from ..errors import DatasetError
from ..utils.rng import derive_rng


def gaussian_mixture(n: int, dim: int, n_clusters: int = 16,
                     cluster_std: float = 0.15, seed: int = 0,
                     dtype=np.float32, box: float = 1.0,
                     arrangement: str = "uniform",
                     chain_step: float = 0.6) -> np.ndarray:
    """``n`` points from ``n_clusters`` isotropic Gaussians.

    ``arrangement`` controls where the cluster centers live:

    - ``"uniform"`` — i.i.d. uniform in a ``[0, box]^dim`` cube: well
      separated in high dimension, which makes *hard, island-like*
      neighborhoods (k-NN graphs over them disconnect as n grows),
    - ``"chain"`` — a Gaussian random walk of centers whose step is
      ``chain_step`` cluster-radii, so consecutive clusters overlap:
      the k-NN graph stays *connected at any n*, like real embedding
      corpora whose density varies smoothly.  Use this for
      search-quality experiments; smaller ``chain_step`` means heavier
      overlap, i.e. a *harder* dataset.

    ``cluster_std`` is relative to ``box``; smaller values make tighter,
    easier neighborhoods (in the uniform arrangement; the chain is
    scale-invariant in ``cluster_std`` and tuned via ``chain_step``).
    """
    if n < 1 or dim < 1 or n_clusters < 1:
        raise DatasetError("n, dim, n_clusters must all be >= 1")
    if arrangement not in ("uniform", "chain"):
        raise DatasetError(f"unknown arrangement {arrangement!r}")
    if chain_step <= 0:
        raise DatasetError(f"chain_step must be positive, got {chain_step}")
    rng = derive_rng(seed, 0xDA7A, n, dim)
    if arrangement == "uniform":
        centers = rng.uniform(0.0, box, size=(n_clusters, dim))
    else:
        # Random-walk centers.  In high dimension the step norm
        # concentrates at step * sqrt(dim) (no near pairs by chance),
        # so the per-coordinate step must stay well below cluster_std
        # for adjacent blobs to overlap.
        step = chain_step * cluster_std * box
        steps = rng.normal(0.0, step, size=(n_clusters, dim))
        centers = np.cumsum(steps, axis=0) + rng.uniform(0.0, box, size=dim)
    assignment = rng.integers(0, n_clusters, size=n)
    points = centers[assignment] + rng.normal(0.0, cluster_std * box, size=(n, dim))
    if np.issubdtype(np.dtype(dtype), np.integer):
        info = np.iinfo(dtype)
        lo, hi = points.min(), points.max()
        scaled = (points - lo) / max(hi - lo, 1e-12) * (info.max - info.min) + info.min
        return scaled.astype(dtype)
    return points.astype(dtype)


def uniform_hypercube(n: int, dim: int, seed: int = 0,
                      dtype=np.float32) -> np.ndarray:
    """Uniform points in the unit cube — the hardest (structure-free)
    case for graph-based ANN; used in robustness tests."""
    if n < 1 or dim < 1:
        raise DatasetError("n and dim must be >= 1")
    rng = derive_rng(seed, 0x0F12E, n, dim)
    return rng.uniform(0.0, 1.0, size=(n, dim)).astype(dtype)


def planted_neighbors(n: int, dim: int, group: int = 4, spread: float = 1e-3,
                      seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """Points in tight groups of ``group`` near-duplicates.

    Returns ``(data, group_ids)``; within a group, every point's true
    nearest neighbors are the other members — a planted ground truth for
    correctness tests that does not need brute force.
    """
    if group < 2:
        raise DatasetError(f"group must be >= 2, got {group}")
    rng = derive_rng(seed, 0x91A7, n, dim)
    n_groups = -(-n // group)
    anchors = rng.uniform(0.0, 1.0, size=(n_groups, dim))
    # Keep anchors well separated relative to the intra-group spread.
    data = np.empty((n, dim), dtype=np.float64)
    group_ids = np.empty(n, dtype=np.int64)
    for i in range(n):
        g = i // group
        data[i] = anchors[g] + rng.normal(0.0, spread, size=dim)
        group_ids[i] = g
    return data.astype(np.float32), group_ids


def power_law_sets(n: int, universe: int = 2000, mean_size: float = 20.0,
                   alpha: float = 1.5, seed: int = 0,
                   n_topics: int = 16) -> SparseDataset:
    """Kosarak-style transaction sets: item popularity follows a power
    law and records cluster around topics (shared popular item pools),
    so Jaccard neighborhoods are meaningful."""
    if universe < 4 or n < 1:
        raise DatasetError("universe must be >= 4 and n >= 1")
    rng = derive_rng(seed, 0x5E75, n, universe)
    # Zipfian item weights.
    ranks = np.arange(1, universe + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    weights /= weights.sum()
    # Topic pools: each topic prefers a contiguous slice of items.
    topic_of = rng.integers(0, n_topics, size=n)
    pool = max(universe // n_topics, 4)
    records = []
    for i in range(n):
        size = max(2, int(rng.poisson(mean_size)))
        t = int(topic_of[i])
        lo = (t * pool) % max(universe - pool, 1)
        # Mix topic-local items with popularity-weighted global draws.
        local = rng.integers(lo, lo + pool, size=max(1, size // 2))
        glob = rng.choice(universe, size=size - len(local), p=weights)
        records.append(np.concatenate([local, glob]))
    return SparseDataset(records)


def add_query_noise(data: np.ndarray, scale: float = 0.02,
                    seed: int = 0) -> np.ndarray:
    """Perturbed copies of dataset rows, used to derive query sets whose
    true neighbors are known to be near their source rows."""
    rng = derive_rng(seed, 0x9E15E)
    noise = rng.normal(0.0, scale, size=data.shape)
    return (data.astype(np.float64) + noise).astype(data.dtype if
            np.issubdtype(data.dtype, np.floating) else np.float32)


def train_query_split(data, n_queries: int, seed: int = 0):
    """Split rows into (train, queries) deterministically."""
    n = len(data)
    if not 0 < n_queries < n:
        raise DatasetError(f"n_queries must be in (0, {n}), got {n_queries}")
    rng = derive_rng(seed, 0x5917)
    perm = rng.permutation(n)
    q_idx = np.sort(perm[:n_queries])
    t_idx = np.sort(perm[n_queries:])
    if isinstance(data, np.ndarray):
        return data[t_idx], data[q_idx]
    train = [data[int(i)] for i in t_idx]
    queries = [data[int(i)] for i in q_idx]
    return train, queries
