"""Dataset generators and paper-dataset stand-ins (S16).

The paper evaluates on eight datasets (Table 1) from ANN-Benchmarks and
Big-ANN-Benchmarks.  Those corpora are not redistributable here (and the
billion-scale ones would not fit a laptop), so :mod:`.ann_benchmarks`
provides *synthetic stand-ins* with matching dimensionality, metric,
dtype, and (scaled) cardinality — clustered Gaussian mixtures for dense
data and power-law item sets for Kosarak — which exercise the same code
paths and produce non-trivial neighborhood structure.
"""

from .synthetic import (
    gaussian_mixture,
    uniform_hypercube,
    power_law_sets,
    planted_neighbors,
)
from .ann_benchmarks import (
    DatasetSpec,
    PAPER_DATASETS,
    load_dataset,
    make_benchmark_dataset,
)
from .ground_truth import exact_ground_truth, with_query_split

__all__ = [
    "gaussian_mixture",
    "uniform_hypercube",
    "power_law_sets",
    "planted_neighbors",
    "DatasetSpec",
    "PAPER_DATASETS",
    "load_dataset",
    "make_benchmark_dataset",
    "exact_ground_truth",
    "with_query_split",
]
