"""Stand-ins for the paper's eight evaluation datasets (Table 1).

| Dataset        | Dim    | Entries   | Metric  | Stand-in                         |
|----------------|--------|-----------|---------|----------------------------------|
| Fashion-MNIST  | 784    | 60,000    | L2      | Gaussian mixture, f32            |
| GloVe 25       | 25     | 1,183,514 | Cosine  | Gaussian mixture, f32            |
| Kosarak        | 27,983 | 74,962    | Jaccard | power-law item sets              |
| MNIST          | 784    | 60,000    | L2      | Gaussian mixture, f32            |
| NYTimes        | 256    | 290,000   | Cosine  | Gaussian mixture, f32 (harder)   |
| Last.fm        | 65     | 292,385   | Cosine  | Gaussian mixture, f32            |
| Yandex DEEP 1B | 96     | 1 billion | L2      | Gaussian mixture, **float32**    |
| BigANN         | 128    | 1 billion | L2      | Gaussian mixture, **uint8**      |

Cardinalities are scaled by a common factor (default: the small sets to
a few thousand, the billion sets to tens of thousands) while keeping
each dataset's *relative* size, dimensionality, dtype, and metric — the
properties that drive algorithm behaviour.  NYTimes gets a higher noise
level (its published recall, 0.93, is the lowest in Section 5.2, i.e.
it is the hardest of the six), and Last.fm slightly elevated noise
(0.98), so the stand-ins reproduce the paper's difficulty ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..errors import DatasetError
from .synthetic import gaussian_mixture, power_law_sets


@dataclass(frozen=True)
class DatasetSpec:
    """Metadata of one Table 1 dataset and its stand-in parameters."""

    name: str
    dim: int
    paper_entries: int
    metric: str
    dtype: str = "float32"
    default_n: int = 2000
    cluster_std: float = 0.12
    n_clusters: int = 24
    sparse: bool = False
    mean_set_size: float = 20.0
    arrangement: str = "uniform"
    chain_step: float = 0.6
    """Chain-mode hardness: smaller = heavier cluster overlap = harder."""

    def scaled_n(self, scale: Optional[float] = None) -> int:
        """Entries for this run: explicit ``default_n`` scaled by a
        user factor."""
        n = self.default_n if scale is None else int(self.default_n * scale)
        return max(n, 64)


#: Stand-in knobs are tuned so that (a) the NN-Descent difficulty
#: ordering of Section 5.2 is preserved (NYTimes hardest among the
#: dense sets, Last.fm next) and (b) every dataset used for *search*
#: experiments (GloVe/NYTimes/Last.fm/DEEP/BigANN) yields a *connected*
#: k-NN graph at any size — the ``chain`` arrangement guarantees that,
#: mirroring real embedding corpora whose density varies smoothly
#: (a disconnected graph caps greedy-search recall regardless of graph
#: quality).  The 784-dim image sets keep isolated tight clusters
#: (their real counterparts are only used for graph recall in the
#: paper, not for query evaluation).
PAPER_DATASETS: Dict[str, DatasetSpec] = {
    "fashion-mnist": DatasetSpec("fashion-mnist", 784, 60_000, "euclidean",
                                 default_n=2000, cluster_std=0.10, n_clusters=10),
    "glove-25": DatasetSpec("glove-25", 25, 1_183_514, "cosine",
                            default_n=4000, cluster_std=0.25, n_clusters=40,
                            arrangement="chain", chain_step=0.6),
    "kosarak": DatasetSpec("kosarak", 27_983, 74_962, "jaccard", dtype="set",
                           default_n=1500, sparse=True, mean_set_size=20.0),
    "mnist": DatasetSpec("mnist", 784, 60_000, "euclidean",
                         default_n=2000, cluster_std=0.10, n_clusters=10),
    "nytimes": DatasetSpec("nytimes", 256, 290_000, "cosine",
                           default_n=2500, cluster_std=0.50, n_clusters=48,
                           arrangement="chain", chain_step=0.12),
    "lastfm": DatasetSpec("lastfm", 65, 292_385, "cosine",
                          default_n=2500, cluster_std=0.35, n_clusters=32,
                          arrangement="chain", chain_step=0.25),
    "deep1b": DatasetSpec("deep1b", 96, 1_000_000_000, "euclidean",
                          default_n=10_000, cluster_std=0.25, n_clusters=64,
                          arrangement="chain", chain_step=0.6),
    "bigann": DatasetSpec("bigann", 128, 1_000_000_000, "euclidean",
                          dtype="uint8", default_n=10_000, cluster_std=0.25,
                          n_clusters=64, arrangement="chain", chain_step=0.6),
}

#: The six "small" datasets used in the Section 5.2 quality study.
SMALL_DATASETS = ["fashion-mnist", "glove-25", "kosarak", "mnist", "nytimes", "lastfm"]

#: The two billion-scale datasets of Section 5.3.
BILLION_DATASETS = ["deep1b", "bigann"]


def load_dataset(name: str, n: Optional[int] = None, seed: int = 0):
    """Materialize the stand-in for a Table 1 dataset.

    Returns ``(data, spec)`` where ``data`` is a dense matrix or a
    :class:`~repro.distances.sparse.SparseDataset`.
    """
    key = name.lower()
    spec = PAPER_DATASETS.get(key)
    if spec is None:
        raise DatasetError(
            f"unknown dataset {name!r}; known: {sorted(PAPER_DATASETS)}"
        )
    n_eff = n if n is not None else spec.default_n
    if n_eff < 64:
        raise DatasetError(f"dataset size must be >= 64, got {n_eff}")
    if spec.sparse:
        data = power_law_sets(
            n_eff, universe=min(spec.dim, 4000),
            mean_size=spec.mean_set_size, seed=seed,
        )
    else:
        dtype = np.uint8 if spec.dtype == "uint8" else np.float32
        data = gaussian_mixture(
            n_eff, spec.dim, n_clusters=spec.n_clusters,
            cluster_std=spec.cluster_std, seed=seed, dtype=dtype,
            arrangement=spec.arrangement, chain_step=spec.chain_step,
        )
    return data, spec


def make_benchmark_dataset(name: str, n: int, n_queries: int, k_gt: int = 10,
                           seed: int = 0):
    """Dataset + held-out queries + exact ground truth (mirrors the
    Big-ANN-Benchmarks query/ground-truth bundles used in Section 5.3.3).

    Returns ``(train, queries, gt_ids, spec)``.
    """
    from ..baselines.bruteforce import brute_force_neighbors
    from .synthetic import train_query_split

    data, spec = load_dataset(name, n=n + n_queries, seed=seed)
    if spec.sparse:
        records = [data[i] for i in range(len(data))]
        train_recs, query_recs = train_query_split(records, n_queries, seed=seed)
        from ..distances.sparse import SparseDataset
        train = SparseDataset(train_recs)
        queries = SparseDataset(query_recs)
    else:
        train, queries = train_query_split(data, n_queries, seed=seed)
    gt_ids, _ = brute_force_neighbors(train, queries, k=k_gt, metric=spec.metric)
    return train, queries, gt_ids, spec
