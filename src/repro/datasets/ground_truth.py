"""Exact ground truth computation and query-split helpers."""

from __future__ import annotations

from typing import Tuple


from ..baselines.bruteforce import brute_force_knn_graph, brute_force_neighbors
from ..core.graph import KNNGraph
from ..errors import DatasetError
from .synthetic import train_query_split


def exact_ground_truth(data, k: int, metric="sqeuclidean") -> KNNGraph:
    """Exact k-NN graph — Section 5.2's brute-force reference."""
    return brute_force_knn_graph(data, k=k, metric=metric)


def with_query_split(data, n_queries: int, k_gt: int = 10,
                     metric="sqeuclidean", seed: int = 0) -> Tuple:
    """Split data into (train, queries) and compute exact query ground
    truth over the train part.

    Returns ``(train, queries, gt_ids, gt_dists)``.
    """
    if n_queries < 1:
        raise DatasetError(f"n_queries must be >= 1, got {n_queries}")
    train, queries = train_query_split(data, n_queries, seed=seed)
    gt_ids, gt_dists = brute_force_neighbors(train, queries, k=k_gt, metric=metric)
    return train, queries, gt_ids, gt_dists
