"""Shared type aliases and size constants.

Section 2 of the paper fixes the data-size accounting used throughout the
evaluation: a dataset is ``N x dim x E`` bytes (``E`` = element size), and
a k-NN graph is ``k x N x T`` bytes (``T`` = size of the point-id type,
4 bytes for ``uint32`` in the paper's billion-scale runs).  The constants
here make the same accounting explicit in our message/size models.
"""

from __future__ import annotations

from typing import Callable, Union

import numpy as np

#: Dense feature matrix: shape ``(n, dim)``.
FeatureMatrix = np.ndarray

#: A single feature vector: shape ``(dim,)``.
FeatureVector = np.ndarray

#: Sparse set-valued record (for Jaccard): a sorted 1-D integer array.
SparseRecord = np.ndarray

#: A scalar distance function ``theta(a, b) -> float``.
DistanceFn = Callable[[np.ndarray, np.ndarray], float]

#: Global vertex identifier.
VertexId = int

#: Rank identifier inside a simulated cluster.
RankId = int

#: dtype used for point ids, matching the paper's ``uint32``.
ID_DTYPE = np.uint32

#: dtype used for distances on the wire and in graphs.
DIST_DTYPE = np.float32

#: Size in bytes of a point id on the wire (``T`` in Section 2).
ID_BYTES = 4

#: Size in bytes of a serialized distance value.
DIST_BYTES = 4

#: Sentinel id marking an empty heap/graph slot.
INVALID_ID = np.iinfo(np.uint32).max

ArrayLike = Union[np.ndarray, list, tuple]


def feature_bytes(dim: int, dtype: np.dtype) -> int:
    """Size in bytes of one feature vector on the wire.

    This is the dominant term of a Type 2 message (Section 4.3): the
    paper's communication-saving analysis is expressed in terms of how
    many of these vectors cross the network.
    """
    return int(dim) * np.dtype(dtype).itemsize


def dataset_bytes(n: int, dim: int, dtype: np.dtype) -> int:
    """``N x dim x E`` of Section 2."""
    return int(n) * feature_bytes(dim, dtype)


def graph_bytes(n: int, k: int) -> int:
    """``k x N x T`` of Section 2 (ids only, uint32)."""
    return int(n) * int(k) * ID_BYTES
