"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by public API entry points derive from
:class:`ReproError` so that callers can catch library failures with a
single ``except`` clause while letting programming errors (``TypeError``,
``ValueError`` raised by numpy, etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An algorithm or runtime configuration value is invalid."""


class MetricError(ReproError):
    """An unknown metric name was requested, or a metric was applied to
    data of an incompatible kind (e.g. Jaccard on dense vectors)."""


class RuntimeStateError(ReproError):
    """The simulated runtime was used outside of its legal lifecycle
    (e.g. sending messages after shutdown, nested barriers)."""


class PartitionError(ReproError):
    """A vertex id was routed to or dereferenced on the wrong rank."""


class StoreError(ReproError):
    """A persistent-store (Metall-style) operation failed: missing store,
    double-create, unknown attached object, version mismatch."""


class GraphError(ReproError):
    """A k-NN graph container invariant was violated (shape mismatch,
    duplicate neighbor insertion with inconsistent distance, etc.)."""


class SearchError(ReproError):
    """A query-time failure: empty graph, dimension mismatch between the
    query vector and the indexed dataset, invalid ``epsilon``."""


class DatasetError(ReproError):
    """A dataset generator or loader received invalid parameters or a
    malformed file."""
