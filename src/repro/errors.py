"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by public API entry points derive from
:class:`ReproError` so that callers can catch library failures with a
single ``except`` clause while letting programming errors (``TypeError``,
``ValueError`` raised by numpy, etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An algorithm or runtime configuration value is invalid."""


class MetricError(ReproError):
    """An unknown metric name was requested, or a metric was applied to
    data of an incompatible kind (e.g. Jaccard on dense vectors)."""


class RuntimeStateError(ReproError):
    """The simulated runtime was used outside of its legal lifecycle
    (e.g. sending messages after shutdown, nested barriers)."""


class PartitionError(ReproError):
    """A vertex id was routed to or dereferenced on the wrong rank."""


class StoreError(ReproError):
    """A persistent-store (Metall-style) operation failed: missing store,
    double-create, unknown attached object, version mismatch."""


class StoreCorruptError(StoreError):
    """A stored object failed integrity verification on load: truncated
    file, checksum mismatch, or an unparseable payload.  Raised instead
    of the raw deserialization error so callers can distinguish
    corruption (restore from an older snapshot) from absence."""


class CheckpointCorruptError(StoreCorruptError):
    """A build checkpoint is unusable: the recovery path verified the
    snapshot before trusting it and found it corrupt.  Supervised
    recovery treats this as unrecoverable-from-this-checkpoint rather
    than crashing mid-restore with a pickle/numpy parse error."""


class GraphError(ReproError):
    """A k-NN graph container invariant was violated (shape mismatch,
    duplicate neighbor insertion with inconsistent distance, etc.)."""


class SearchError(ReproError):
    """A query-time failure: empty graph, dimension mismatch between the
    query vector and the indexed dataset, invalid ``epsilon``."""


class DatasetError(ReproError):
    """A dataset generator or loader received invalid parameters or a
    malformed file."""


class SanitizerError(ReproError):
    """Base class for runtime-sanitizer detections (``REPRO_SANITIZE=1``):
    each subclass is one class of distributed-correctness bug caught at
    the moment it happens instead of as a corrupted build later."""


class OwnershipViolationError(SanitizerError):
    """Rank-owned state (a shard, a neighbor heap, a container slot) was
    read or written from a handler executing at a *different* rank.  On
    a real cluster that memory simply does not exist at the accessing
    process; the sanctioned channel is an ``async_call`` delivered at
    the owner."""

    def __init__(self, message: str, *, owner: int | None = None,
                 accessor: int | None = None) -> None:
        super().__init__(message)
        self.owner = owner
        self.accessor = accessor


class HandlerReentrancyError(SanitizerError):
    """A registered handler was invoked while another handler was still
    running (a direct synchronous call instead of an ``async_call``) —
    YGM handlers are atomic units of delivery and must not nest."""


class MutationDuringIterationError(SanitizerError):
    """A neighbor heap was mutated while one of its iterators was live;
    the iteration's remaining output is undefined."""


class RaceConditionError(SanitizerError):
    """Two threads touched the same shared cell inside one barrier epoch
    with at least one write and no common lock (``REPRO_SANITIZE=race``).
    Carries both access records so the report can show where each side
    of the conflict happened."""

    def __init__(self, message: str, *, cell=None, first=None,
                 second=None) -> None:
        super().__init__(message)
        self.cell = cell
        self.first = first
        self.second = second


class FaultToleranceError(ReproError):
    """Fault-tolerant delivery could not mask an injected fault: the
    retry budget for a message was exhausted, or a rank failed with no
    recovery path configured.  Carries enough structure for callers to
    report *what* gave up rather than silently corrupting the build."""

    def __init__(self, message: str, *, src: int | None = None,
                 dest: int | None = None, attempts: int | None = None) -> None:
        super().__init__(message)
        self.src = src
        self.dest = dest
        self.attempts = attempts


class RankFailureError(FaultToleranceError):
    """One or more simulated ranks crashed; raised by the barrier that
    detects the failure (the driver may recover from a checkpoint)."""

    def __init__(self, ranks) -> None:
        self.ranks = tuple(sorted(int(r) for r in ranks))
        super().__init__(f"rank(s) {list(self.ranks)} crashed; barrier failed")
