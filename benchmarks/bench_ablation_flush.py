"""Ablation F — YGM's internal buffer size.

Section 4.4 distinguishes YGM's *internal* buffering ("automatically
sends messages when its internal buffer exceeds a certain threshold")
from the application-level batching DNND adds on top.  This ablation
sweeps the internal buffer's byte cap: small buffers pay per-flush
latency on nearly every message; large buffers amortize it but deliver
work in bursts.  In the cost model the latency effect dominates, which
is exactly why YGM buffers at all.
"""


from _common import report, scaled
from repro import ClusterConfig, DNNDConfig, NNDescentConfig
from repro.core.dnnd import DNND
from repro.datasets.ann_benchmarks import load_dataset
from repro.eval.tables import ascii_table

BUFFER_BYTES = [1 << 10, 1 << 14, 1 << 18, 1 << 22]

_cache = {}


def run_all():
    if _cache:
        return _cache
    n = scaled(500)
    data, spec = load_dataset("deep1b", n=n, seed=16)
    rows = []
    for cap in BUFFER_BYTES:
        cfg = DNNDConfig(nnd=NNDescentConfig(k=8, seed=16), batch_size=1 << 13)
        dnnd = DNND(data, cfg, cluster=ClusterConfig(nodes=4, procs_per_node=2))
        dnnd.world.flush_threshold_bytes = cap  # the knob under test
        res = dnnd.build()
        rows.append({
            "cap": cap,
            "flushes": dnnd.world.flush_count,
            "sim_seconds": res.sim_seconds,
            "iterations": res.iterations,
        })
    _cache["rows"] = rows
    return _cache


def test_smaller_buffers_flush_more(benchmark):
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    flushes = [r["flushes"] for r in out["rows"]]
    assert flushes[0] > flushes[-1]


def test_convergence_unaffected(benchmark):
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    iters = {r["iterations"] for r in out["rows"]}
    assert max(iters) - min(iters) <= 1


def test_print_flush_ablation(benchmark):
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[f"2^{r['cap'].bit_length() - 1} B", r["flushes"],
             f"{r['sim_seconds']:.5f}", r["iterations"]]
            for r in out["rows"]]
    report("ablation_flush", ascii_table(
        ["buffer cap", "flushes", "sim seconds", "iterations"],
        rows,
        title="Ablation: YGM internal buffer byte cap (Section 4.4)",
    ))
