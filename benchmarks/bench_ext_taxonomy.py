"""Extension experiment — the intro's ANN taxonomy, head to head.

Section 1 motivates graph methods by listing the four ANN families:
tree-based (k-d trees), hash-based (LSH), quantization, and graph-based,
citing surveys that graph methods "offer high flexibility and high
accuracy compared to the other methods".  This bench puts the claim on
one chart: k-d tree, LSH, HNSW, NN-Descent graphs (shared-memory and
DNND), and brute force on the same dataset and query set.

Expected shape (and asserted): at matched recall floors, the graph
methods answer queries with fewer distance evaluations than the tree
and hash baselines on this ~100-dimensional data — the curse of
dimensionality that defeats space partitioning is exactly why the
paper builds a graph method.
"""


from _common import report, scaled
from repro.datasets.ann_benchmarks import load_dataset
from repro.datasets.synthetic import train_query_split
from repro.eval.ann_benchmark import AnnBenchmarkRunner
from repro.eval.plots import tradeoff_plot

_cache = {}


def run_all():
    if _cache:
        return _cache
    n = scaled(800)
    data, spec = load_dataset("deep1b", n=n, seed=15)
    train, queries = train_query_split(data, n_queries=max(40, n // 12),
                                       seed=15)
    runner = AnnBenchmarkRunner(train, queries, k=10, metric=spec.metric,
                                dataset_name="deep1b", seed=15)
    runner.run_nndescent(graph_k=15)
    runner.run_dnnd(graph_k=15, nodes=4)
    runner.run_hnsw(M=12, ef_construction=60)
    runner.run_kdtree(leaf_size=16)
    runner.run_lsh(n_tables=16, n_bits=4)
    runner.run_pq(m=8, n_centroids=64)
    runner.run_bruteforce()
    _cache["report"] = runner.report
    return _cache


def test_every_family_present(benchmark):
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert set(out["report"].results) == {
        "dnnd", "nndescent", "hnsw", "kdtree", "lsh", "pq", "bruteforce"}


def test_graph_methods_win_at_high_recall(benchmark):
    """The Section 1 claim: graph-based ANN dominates space-partitioning
    methods at high recall in moderate-to-high dimension."""
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rep = out["report"]
    floor = 0.9
    graph_costs = [rep.results[name].cost_at_recall(floor)
                   for name in ("dnnd", "nndescent", "hnsw")]
    graph_best = min(c for c in graph_costs if c is not None)
    for other in ("kdtree", "lsh"):
        cost = rep.results[other].cost_at_recall(floor)
        if cost is not None:
            assert graph_best < cost, other
    # Brute force always "reaches" the floor at full cost.
    assert graph_best < rep.results["bruteforce"].points[0].mean_distance_evals


def test_exactness_of_exact_methods(benchmark):
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rep = out["report"]
    assert rep.results["bruteforce"].best_recall() == 1.0
    # kdtree with unlimited leaves is exact too.
    assert rep.results["kdtree"].best_recall() == 1.0


def test_print_taxonomy(benchmark):
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rep = out["report"]
    points = {name: res.points for name, res in rep.results.items()}
    text = rep.format() + "\n\n" + tradeoff_plot(
        points, title="Section 1 taxonomy: recall vs query cost (DEEP-like)")
    report("ext_taxonomy", text)
