"""Ablation D — vertex partitioning: hash vs block vs rptree, plus the
post-build repartition pass.

Section 4: DNND distributes vertices "based on the hash values of the
vertex IDs".  This ablation compares that choice against contiguous
block partitioning on a *cluster-sorted* dataset (ids grouped by
cluster, the common layout of dumped corpora) and against the
locality-aware rp-tree placement, then re-homes the hash build with
``DNND.repartition()``.  The measured trade-off:

- block partitioning exploits id locality: cluster neighbors are
  co-located, so a large share of neighbor-check traffic never leaves
  the rank (lower off-node fraction, slightly lower modeled time),
- rptree partitioning gets the same locality *without* depending on id
  order — leaves of a random-projection tree hold likely neighbors
  whatever the ids look like,
- hash partitioning forgoes locality but is *distribution
  independent*: its balance never depends on how ids were assigned,
  and vertices added later (the Metall/Section 7 dynamic scenario)
  land uniformly without repartitioning — the property the paper's
  design optimizes for,
- the repartition pass recovers locality after the fact: one
  capacity-bounded BFS over the built graph, rows re-homed in place.

All variants must construct graphs of identical quality; the measured
difference is purely where the traffic flows.  Per-variant rows (edge
cut, local/remote deliveries, wall-clock, recall) are persisted to
``BENCH_partitioning.json`` at the repository root.
"""

import json
import os
import time

import numpy as np

from _common import report, scaled
from repro import (
    DNND,
    ClusterConfig,
    DNNDConfig,
    NNDescentConfig,
    brute_force_knn_graph,
    graph_recall,
)
from repro.datasets.synthetic import gaussian_mixture
from repro.eval.tables import ascii_table
from repro.runtime.partition import make_partitioner

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))
OUT_PATH = os.path.join(REPO_ROOT, "BENCH_partitioning.json")

_cache = {}


def cluster_sorted_dataset(n: int, seed: int) -> np.ndarray:
    """Clustered data with ids sorted so cluster members are adjacent."""
    data = gaussian_mixture(n, 24, n_clusters=8, cluster_std=0.15, seed=seed)
    order = np.lexsort((data[:, 2], data[:, 1], data[:, 0]))
    return np.ascontiguousarray(data[order])


def _measure(label, dnnd, result, truth, wall_seconds, repartition=False):
    from repro.core.dnnd_phases import shard_of

    if repartition:
        t0 = time.perf_counter()
        graph = dnnd.repartition()
        wall_seconds += time.perf_counter() - t0
    else:
        graph = result.graph
    snap = dnnd.metrics.snapshot()
    per_rank = [shard_of(ctx).metric.count for ctx in dnnd.world.ranks]
    mean = np.mean(per_rank)
    return {
        "label": label,
        "sim_seconds": result.sim_seconds,
        "wall_seconds": wall_seconds,
        "eval_imbalance": float(max(per_rank) / mean) if mean else 1.0,
        "partition_imbalance": snap["gauges"]["partition.imbalance"],
        "edge_cut": snap["gauges"]["partition.edge_cut"],
        "local_deliveries": snap["counters"]["comm.local_deliveries"],
        "remote_deliveries": snap["counters"]["comm.remote_deliveries"],
        "remote_msgs": result.message_stats.total_count(),
        "remote_bytes": result.message_stats.total_bytes(),
        "recall": graph_recall(graph, truth),
    }


def run_all():
    if _cache:
        return _cache
    n = scaled(800)
    data = cluster_sorted_dataset(n, seed=12)
    truth = brute_force_knn_graph(data, k=8)
    rows = []
    for label, name in (("hash (paper)", "hash"), ("block", "block"),
                        ("rptree", "rptree")):
        cfg = DNNDConfig(nnd=NNDescentConfig(k=8, seed=12), batch_size=1 << 13)
        cluster = ClusterConfig(nodes=8, procs_per_node=1)
        part = make_partitioner(name, n, cluster.world_size, data=data,
                                seed=12)
        dnnd = DNND(data, cfg, cluster=cluster, partitioner=part)
        t0 = time.perf_counter()
        res = dnnd.build()
        wall = time.perf_counter() - t0
        rows.append(_measure(label, dnnd, res, truth, wall))
        if name == "hash":
            # Re-home the finished hash build: same graph, new owners.
            rows.append(_measure("hash + repartition", dnnd, res, truth,
                                 wall, repartition=True))
    _cache["rows"] = rows
    with open(OUT_PATH, "w") as fh:
        json.dump({"n": n, "k": 8, "world_size": 8, "rows": rows}, fh,
                  indent=2, sort_keys=True)
        fh.write("\n")
    return _cache


def _row(out, label):
    return next(r for r in out["rows"] if r["label"] == label)


def test_block_exploits_sorted_locality(benchmark):
    """On cluster-sorted ids, block keeps more traffic on-rank — the
    locality hash partitioning deliberately gives up."""
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert (_row(out, "block")["remote_msgs"]
            < _row(out, "hash (paper)")["remote_msgs"])


def test_rptree_cuts_remote_traffic_and_edge_cut(benchmark):
    """The locality partitioner's contract on clustered data: fewer
    remote deliveries and a lower edge cut than hashing."""
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    hash_row, rp_row = _row(out, "hash (paper)"), _row(out, "rptree")
    assert rp_row["remote_deliveries"] < hash_row["remote_deliveries"]
    assert rp_row["edge_cut"] < hash_row["edge_cut"]
    assert rp_row["local_deliveries"] > hash_row["local_deliveries"]


def test_repartition_reduces_edge_cut(benchmark):
    """Re-homing the finished hash build must beat every static
    placement on edge cut — it sees the actual graph."""
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    re_row = _row(out, "hash + repartition")
    assert re_row["edge_cut"] < _row(out, "hash (paper)")["edge_cut"]
    assert re_row["edge_cut"] < _row(out, "rptree")["edge_cut"]


def test_quality_independent_of_partitioning(benchmark):
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    recalls = {r["label"]: r["recall"] for r in out["rows"]}
    assert min(recalls.values()) > 0.9
    ref = recalls["hash (paper)"]
    for label, recall in recalls.items():
        assert abs(recall - ref) <= 0.005, (label, recall, ref)


def test_hash_balance_is_distribution_independent(benchmark):
    """The reason the paper hashes: balance must not depend on the id
    layout.  Hash's compute imbalance on sorted data stays within a
    modest bound of block's (whose balance here is an artifact of the
    synthetic layout, not a guarantee)."""
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert _row(out, "hash (paper)")["eval_imbalance"] < 1.3


def test_bench_record_written(benchmark):
    benchmark.pedantic(run_all, rounds=1, iterations=1)
    with open(OUT_PATH) as fh:
        record = json.load(fh)
    assert {r["label"] for r in record["rows"]} == {
        "hash (paper)", "block", "rptree", "hash + repartition"}


def test_print_partitioning(benchmark):
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[r["label"], f"{r['sim_seconds']:.5f}",
             f"{r['wall_seconds']:.2f}", f"{r['eval_imbalance']:.2f}",
             f"{r['edge_cut']:.4f}", f"{r['local_deliveries']:,}",
             f"{r['remote_deliveries']:,}", round(r["recall"], 4)]
            for r in out["rows"]]
    report("ablation_partitioning", ascii_table(
        ["partitioner", "sim seconds", "wall seconds",
         "compute imbalance", "edge cut", "local deliveries",
         "remote deliveries", "recall"],
        rows,
        title=("Ablation: vertex partitioning on cluster-sorted ids — "
               "locality placement (block/rptree/repartition) vs the "
               "paper's distribution-independent hash (Section 4)"),
    ))
