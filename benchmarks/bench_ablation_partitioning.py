"""Ablation D — hash vs block vertex partitioning.

Section 4: DNND distributes vertices "based on the hash values of the
vertex IDs".  This ablation compares that choice against contiguous
block partitioning on a *cluster-sorted* dataset (ids grouped by
cluster, the common layout of dumped corpora) and quantifies the actual
trade-off:

- block partitioning exploits id locality: cluster neighbors are
  co-located, so a large share of neighbor-check traffic never leaves
  the rank (lower off-node fraction, slightly lower modeled time),
- hash partitioning forgoes that locality but is *distribution
  independent*: its balance never depends on how ids were assigned,
  and vertices added later (the Metall/Section 7 dynamic scenario)
  land uniformly without repartitioning — the property the paper's
  design optimizes for.

Both must construct graphs of identical quality; the measured
difference is purely where the traffic flows.
"""

import numpy as np

from _common import report, scaled
from repro import (
    DNND,
    ClusterConfig,
    DNNDConfig,
    NNDescentConfig,
    brute_force_knn_graph,
    graph_recall,
)
from repro.datasets.synthetic import gaussian_mixture
from repro.eval.tables import ascii_table
from repro.runtime.partition import BlockPartitioner, HashPartitioner

_cache = {}


def cluster_sorted_dataset(n: int, seed: int) -> np.ndarray:
    """Clustered data with ids sorted so cluster members are adjacent."""
    data = gaussian_mixture(n, 24, n_clusters=8, cluster_std=0.15, seed=seed)
    order = np.lexsort((data[:, 2], data[:, 1], data[:, 0]))
    return np.ascontiguousarray(data[order])


def run_all():
    if _cache:
        return _cache
    n = scaled(800)
    data = cluster_sorted_dataset(n, seed=12)
    truth = brute_force_knn_graph(data, k=8)
    rows = []
    for label, part_cls in (("hash (paper)", HashPartitioner),
                            ("block", BlockPartitioner)):
        cfg = DNNDConfig(nnd=NNDescentConfig(k=8, seed=12), batch_size=1 << 13)
        cluster = ClusterConfig(nodes=8, procs_per_node=1)
        dnnd = DNND(data, cfg, cluster=cluster,
                    partitioner=part_cls(n, cluster.world_size))
        res = dnnd.build()
        from repro.core.dnnd_phases import shard_of
        per_rank = [shard_of(ctx).metric.count for ctx in dnnd.world.ranks]
        mean = np.mean(per_rank)
        rows.append({
            "label": label,
            "sim_seconds": res.sim_seconds,
            "eval_imbalance": float(max(per_rank) / mean) if mean else 1.0,
            # Rank-local (self) deliveries are free and not counted, so
            # the remote totals directly expose partitioning locality.
            "remote_msgs": res.message_stats.total_count(),
            "remote_bytes": res.message_stats.total_bytes(),
            "recall": graph_recall(res.graph, truth),
        })
    _cache["rows"] = rows
    return _cache


def test_block_exploits_sorted_locality(benchmark):
    """On cluster-sorted ids, block keeps more traffic on-rank — the
    locality hash partitioning deliberately gives up."""
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    hash_row, block_row = out["rows"]
    assert block_row["remote_msgs"] < hash_row["remote_msgs"]


def test_quality_independent_of_partitioning(benchmark):
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    recalls = [r["recall"] for r in out["rows"]]
    assert min(recalls) > 0.9
    assert abs(recalls[0] - recalls[1]) < 0.05


def test_hash_balance_is_distribution_independent(benchmark):
    """The reason the paper hashes: balance must not depend on the id
    layout.  Hash's compute imbalance on sorted data stays within a
    modest bound of block's (whose balance here is an artifact of the
    synthetic layout, not a guarantee)."""
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    hash_row, _ = out["rows"]
    assert hash_row["eval_imbalance"] < 1.3


def test_print_partitioning(benchmark):
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[r["label"], f"{r['sim_seconds']:.5f}",
             f"{r['eval_imbalance']:.2f}", r["remote_msgs"],
             r["remote_bytes"], round(r["recall"], 4)]
            for r in out["rows"]]
    report("ablation_partitioning", ascii_table(
        ["partitioner", "sim seconds", "compute imbalance (max/mean)",
         "remote msgs", "remote bytes", "recall"],
        rows,
        title=("Ablation: vertex partitioning on cluster-sorted ids — "
               "block wins locality, hash wins distribution independence "
               "(Section 4's choice)"),
    ))
