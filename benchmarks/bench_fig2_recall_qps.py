"""Figure 2 — recall@10 vs query throughput trade-off.

Paper: on DEEP-1B and BigANN, each DNND graph (k=10/20/30) is queried
with epsilon swept over {0, 0.1..0.4 step 0.025} and each Hnsw graph
(A-D) with ef swept 20..1200; DNND k20 matches Hnswlib's best graphs
and k30 beats them in the high-recall regime.

Here: the same sweep on scaled stand-ins.  QPS depends on the host, so
the cross-algorithm comparisons use the platform-independent
mean-distance-evaluations-per-query; both are reported.
"""

import pytest

from _common import report, run_dnnd, scaled
from repro.baselines.hnsw import HNSW, HNSWConfig
from repro.core.search import KNNGraphSearcher
from repro.datasets.ann_benchmarks import make_benchmark_dataset
from repro.eval.qps import QueryBenchmark, sweep_ef, sweep_epsilon
from repro.eval.tables import ascii_table

EPSILONS = [0.0, 0.1, 0.2, 0.3, 0.4]
EFS = [20, 40, 80, 160, 320]
HNSW_CONFIGS = {
    "deep1b": {"Hnsw A": HNSWConfig(M=16, ef_construction=25, seed=0),
               "Hnsw B": HNSWConfig(M=16, ef_construction=100, seed=0)},
    "bigann": {"Hnsw C": HNSWConfig(M=8, ef_construction=12, seed=0),
               "Hnsw D": HNSWConfig(M=16, ef_construction=100, seed=0)},
}

_cache = {}


def run_dataset(name: str):
    if name in _cache:
        return _cache[name]
    # Large enough that a k=10 graph no longer saturates recall — the
    # separation between the k=10/20/30 curves is the figure's content.
    n = scaled(1600)
    nq = max(50, n // 12)
    train, queries, gt_ids, spec = make_benchmark_dataset(
        name, n=n, n_queries=nq, k_gt=10, seed=6)
    bench = QueryBenchmark(queries=queries, gt_ids=gt_ids, k=10)
    series = {}
    for k in (10, 20, 30):
        _, dnnd = run_dnnd(train, k=k, nodes=4, procs_per_node=2,
                           metric=spec.metric, seed=6, optimize=True)
        searcher = KNNGraphSearcher(dnnd._last_result.adjacency, train,
                                    metric=spec.metric, seed=0)
        series[f"DNND k{k}"] = sweep_epsilon(
            searcher, bench, f"DNND k{k}", epsilons=EPSILONS)
    for label, cfg in HNSW_CONFIGS[name].items():
        index = HNSW(train, cfg, metric=spec.metric).build()
        series[label] = sweep_ef(index, bench, label, efs=EFS)
    _cache[name] = series
    return series


def best_recall(points):
    return max(p.recall for p in points)


@pytest.mark.parametrize("name", ["deep1b", "bigann"])
def test_fig2_claims(benchmark, name):
    series = benchmark.pedantic(lambda: run_dataset(name), rounds=1, iterations=1)
    hnsw_best = max(best_recall(pts) for label, pts in series.items()
                    if label.startswith("Hnsw"))
    # Paper claims: DNND k20 reaches similar quality to Hnsw's best;
    # k30 similar or better.
    assert best_recall(series["DNND k20"]) >= hnsw_best - 0.05
    assert best_recall(series["DNND k30"]) >= hnsw_best - 0.02
    # Larger k -> better achievable recall.
    assert (best_recall(series["DNND k30"])
            >= best_recall(series["DNND k10"]) - 0.01)


@pytest.mark.parametrize("name", ["deep1b", "bigann"])
def test_fig2_epsilon_monotone_work(benchmark, name):
    series = benchmark.pedantic(lambda: run_dataset(name), rounds=1, iterations=1)
    for k in (10, 20, 30):
        evals = [p.mean_distance_evals for p in series[f"DNND k{k}"]]
        assert evals == sorted(evals), (k, evals)


def test_print_fig2(benchmark):
    def run():
        return {name: run_dataset(name) for name in ("deep1b", "bigann")}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = []
    for name, series in results.items():
        rows = []
        for label in sorted(series):
            for p in series[label]:
                rows.append([label, p.param, round(p.recall, 4),
                             round(p.qps, 0), round(p.mean_distance_evals, 1)])
        lines.append(ascii_table(
            ["series", "param (eps/ef)", "recall@10", "qps (host)",
             "dist evals/query"],
            rows,
            title=f"Figure 2 ({name}): recall@10 vs query cost",
        ))
        hnsw_best = max(best_recall(pts) for label, pts in series.items()
                        if label.startswith("Hnsw"))
        lines.append(
            f"{name}: best recall - DNND k10 {best_recall(series['DNND k10']):.4f}, "
            f"k20 {best_recall(series['DNND k20']):.4f}, "
            f"k30 {best_recall(series['DNND k30']):.4f}, "
            f"Hnsw best {hnsw_best:.4f} "
            f"(paper: k20 ~ Hnsw best, k30 better)\n"
        )
        from repro.eval.plots import tradeoff_plot
        lines.append(tradeoff_plot(
            series, title=f"Figure 2 ({name}): recall@10 vs query cost"))
        lines.append("")
    report("fig2_recall_qps", "\n".join(lines))
