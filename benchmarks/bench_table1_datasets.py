"""Table 1 — dataset inventory.

Materializes the stand-in for each of the paper's eight datasets and
prints the Table 1 row (dimensions, paper entries, metric) alongside
the scaled stand-in actually used in this reproduction.
"""

import pytest

from _common import report, scaled
from repro.datasets.ann_benchmarks import PAPER_DATASETS, load_dataset
from repro.eval.tables import ascii_table


@pytest.mark.parametrize("name", sorted(PAPER_DATASETS))
def test_materialize_each_dataset(benchmark, name):
    spec = PAPER_DATASETS[name]
    n = scaled(min(spec.default_n, 1000), minimum=128)
    data, _ = benchmark.pedantic(
        lambda: load_dataset(name, n=n, seed=0), rounds=1, iterations=1)
    assert len(data) == n


def test_print_table1(benchmark):
    def run():
        rows = []
        for name in ["fashion-mnist", "glove-25", "kosarak", "mnist",
                     "nytimes", "lastfm", "deep1b", "bigann"]:
            spec = PAPER_DATASETS[name]
            n = scaled(min(spec.default_n, 1000), minimum=128)
            data, _ = load_dataset(name, n=n, seed=0)
            dim = data.dim if spec.sparse else data.shape[1]
            dtype = "set" if spec.sparse else str(data.dtype)
            rows.append([spec.name, spec.dim, f"{spec.paper_entries:,}",
                         spec.metric, dim, len(data), dtype])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("table1", ascii_table(
        ["dataset", "paper dim", "paper entries", "metric",
         "stand-in dim", "stand-in n", "dtype"],
        rows,
        title="Table 1: Datasets used in the evaluation",
    ))
