"""Figure 4 — effectiveness of the communication-saving techniques.

Paper: on DEEP-1B and BigANN (k=10, 16 nodes), the optimized pattern
(Type 1 + Type 2+ + Type 3) sends ~50% fewer neighbor-check messages
and ~50% fewer bytes than the unoptimized pattern (Type 1 + Type 2).

Here: identical measurement on the scaled stand-ins; message counts and
modeled bytes come from the instrumented YGM layer, so the 50% claim is
checked exactly, per message type.
"""

import pytest

from _common import check_message_types, report, run_dnnd, scaled
from repro import CommOptConfig
from repro.datasets.ann_benchmarks import load_dataset
from repro.eval.tables import ascii_table

CHECK_TYPES = ("type1", "type2", "type2+", "type3")
DATASETS = ["deep1b", "bigann"]
_cache = {}


def run_pair(name: str):
    if name in _cache:
        return _cache[name]
    n = scaled(1000)
    data, spec = load_dataset(name, n=n, seed=4)
    out = {}
    for label, opts in (("unoptimized", CommOptConfig.unoptimized()),
                        ("optimized", CommOptConfig.optimized())):
        res, _ = run_dnnd(data, k=10, nodes=16, procs_per_node=1,
                          metric=spec.metric, seed=4, comm_opts=opts,
                          optimize=False)
        stats = res.phase_stats["neighbor_check"]
        out[label] = {
            "types": check_message_types(stats),
            "count": stats.total_count(CHECK_TYPES),
            "bytes": stats.total_bytes(CHECK_TYPES),
        }
    _cache[name] = out
    return out


@pytest.mark.parametrize("name", DATASETS)
def test_fig4_savings(benchmark, name):
    out = benchmark.pedantic(lambda: run_pair(name), rounds=1, iterations=1)
    count_ratio = out["optimized"]["count"] / out["unoptimized"]["count"]
    bytes_ratio = out["optimized"]["bytes"] / out["unoptimized"]["bytes"]
    # Paper: "reduced by about 50%". Accept 35-65%.
    assert 0.35 < count_ratio < 0.65, count_ratio
    assert 0.35 < bytes_ratio < 0.65, bytes_ratio


def test_print_fig4(benchmark):
    def run():
        return {name: run_pair(name) for name in DATASETS}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = []
    for name in DATASETS:
        out = results[name]
        rows = []
        for label in ("unoptimized", "optimized"):
            for t, (cnt, byts) in sorted(out[label]["types"].items()):
                rows.append([label, t, cnt, byts])
            rows.append([label, "TOTAL", out[label]["count"], out[label]["bytes"]])
        count_red = 1 - out["optimized"]["count"] / out["unoptimized"]["count"]
        bytes_red = 1 - out["optimized"]["bytes"] / out["unoptimized"]["bytes"]
        lines.append(ascii_table(
            ["pattern", "msg type", "messages", "bytes"],
            rows,
            title=(f"Figure 4 ({name}): neighbor-check messages, k=10, "
                   f"16 nodes"),
        ))
        lines.append(
            f"reduction: {count_red:.1%} messages, {bytes_red:.1%} bytes "
            f"(paper: ~50% for both)\n"
        )
    report("fig4_message_savings", "\n".join(lines))
