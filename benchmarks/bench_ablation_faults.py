"""Ablation — fault injection vs reliable-delivery overhead.

Not a paper figure: the paper assumes a reliable MPI fabric.  This
ablation quantifies what that assumption is worth by injecting message
loss and measuring (a) what an *unprotected* build loses in recall and
(b) what the reliable-delivery mode (acks + retransmits + dedup) pays in
simulated time and extra traffic to mask the same faults — plus how the
retransmit budget trades robustness against fail-fast behaviour.

Series reported:

- recall@k and sim-time vs drop rate, unreliable vs reliable,
- recovery traffic (acks, retransmits) vs drop rate,
- minimum retry budget that survives each drop rate.
"""

import pytest

from _common import report, scaled
from repro import (
    ClusterConfig,
    DNNDConfig,
    FaultPlan,
    NNDescentConfig,
    brute_force_knn_graph,
    graph_recall,
)
from repro.core.dnnd import DNND
from repro.datasets.ann_benchmarks import load_dataset
from repro.errors import FaultToleranceError
from repro.eval.tables import ascii_table

DROP_RATES = [0.0, 0.02, 0.05, 0.10, 0.20]
# At BUDGET_DROP_RATE both data and acks drop, so one attempt succeeds
# with p = (1 - rate)^2 — small budgets give up, the default (32) rides
# it out.
RETRY_BUDGETS = [1, 2, 4, 32]
BUDGET_DROP_RATE = 0.3

_cache = {}


def build(data, drop_rate, reliable, max_retries=32):
    cfg = DNNDConfig(nnd=NNDescentConfig(k=8, seed=21), batch_size=1 << 13)
    plan = FaultPlan(seed=21, drop_rate=drop_rate) if drop_rate else None
    dnnd = DNND(data, cfg, cluster=ClusterConfig(nodes=4, procs_per_node=2),
                fault_plan=plan, reliable=reliable, max_retries=max_retries)
    return dnnd.build()


def run_all():
    if _cache:
        return _cache
    n = scaled(500)
    data, _spec = load_dataset("deep1b", n=n, seed=21)
    truth = brute_force_knn_graph(data, k=8)

    drop_rows = []
    for rate in DROP_RATES:
        row = {"rate": rate}
        for mode, reliable in (("unreliable", False), ("reliable", True)):
            res = build(data, rate, reliable)
            row[mode] = {
                "recall": graph_recall(res.graph, truth),
                "sim_seconds": res.sim_seconds,
                "retransmits": res.fault_stats.retransmits,
                "acks": res.message_stats.get("ack").count,
            }
        drop_rows.append(row)

    budget_rows = []
    for budget in RETRY_BUDGETS:
        try:
            res = build(data, BUDGET_DROP_RATE, reliable=True,
                        max_retries=budget)
            budget_rows.append({
                "budget": budget, "outcome": "completed",
                "recall": graph_recall(res.graph, truth),
                "retransmits": res.fault_stats.retransmits,
            })
        except FaultToleranceError:
            budget_rows.append({
                "budget": budget, "outcome": "gave up",
                "recall": None, "retransmits": None,
            })

    _cache.update(drop_rows=drop_rows, budget_rows=budget_rows,
                  baseline=drop_rows[0])
    return _cache


def test_unprotected_drops_hurt_recall(benchmark):
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    clean = out["baseline"]["unreliable"]["recall"]
    worst = out["drop_rows"][-1]["unreliable"]["recall"]
    assert worst < clean


def test_reliable_mode_preserves_recall(benchmark):
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    clean = out["baseline"]["reliable"]["recall"]
    for row in out["drop_rows"]:
        assert row["reliable"]["recall"] == pytest.approx(clean, abs=1e-12)


def test_reliability_costs_time_under_faults(benchmark):
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lossy = out["drop_rows"][-1]
    assert lossy["reliable"]["sim_seconds"] > lossy["unreliable"]["sim_seconds"]
    assert lossy["reliable"]["retransmits"] > 0


def test_larger_budgets_survive_more(benchmark):
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    outcomes = [r["outcome"] for r in out["budget_rows"]]
    # Survival is monotone in the budget: once a budget completes, every
    # larger one does too.
    first_ok = outcomes.index("completed") if "completed" in outcomes else len(outcomes)
    assert all(o == "completed" for o in outcomes[first_ok:])
    assert outcomes[-1] == "completed"


def test_print_fault_ablation(benchmark):
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    clean_sim = out["baseline"]["reliable"]["sim_seconds"]
    rows = []
    for r in out["drop_rows"]:
        rows.append([
            f"{r['rate']:.0%}",
            f"{r['unreliable']['recall']:.4f}",
            f"{r['reliable']['recall']:.4f}",
            f"{r['reliable']['sim_seconds'] / clean_sim:.2f}x",
            f"{r['reliable']['retransmits']:,}",
            f"{r['reliable']['acks']:,}",
        ])
    text = ascii_table(
        ["drop rate", "recall (unrel.)", "recall (reliable)",
         "reliable sim-time", "retransmits", "ack msgs"],
        rows,
        title="Ablation: recall & overhead vs message drop rate (k=8)",
    )
    rows = [[r["budget"], r["outcome"],
             "-" if r["recall"] is None else f"{r['recall']:.4f}",
             "-" if r["retransmits"] is None else f"{r['retransmits']:,}"]
            for r in out["budget_rows"]]
    text += "\n\n" + ascii_table(
        ["retry budget", "outcome", "recall", "retransmits"],
        rows,
        title=f"Ablation: retry budget at {BUDGET_DROP_RATE:.0%} drop rate",
    )
    report("ablation_faults", text)
