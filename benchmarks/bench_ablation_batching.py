"""Ablation B — Section 4.4 application-level batched communication.

The paper reports that a barrier every 2^25-2^30 global requests avoids
congestion at billion scale.  In the cost model the effect appears as
the trade-off between barrier latency (many small batches) and buffer
pressure (no batching): this ablation sweeps the batch size and reports
barrier counts, flush counts, and simulated time.
"""


from _common import report, scaled
from repro import DNND, ClusterConfig, DNNDConfig, NNDescentConfig
from repro.datasets.ann_benchmarks import load_dataset
from repro.eval.tables import ascii_table

BATCHES = [1 << 8, 1 << 10, 1 << 13, 1 << 16, 0]  # 0 = no app batching

_cache = {}


def run_all():
    if _cache:
        return _cache
    n = scaled(600)
    data, spec = load_dataset("deep1b", n=n, seed=10)
    rows = []
    for batch in BATCHES:
        cfg = DNNDConfig(nnd=NNDescentConfig(k=10, metric=spec.metric, seed=10),
                         batch_size=batch)
        dnnd = DNND(data, cfg, cluster=ClusterConfig(nodes=4, procs_per_node=2))
        res = dnnd.build()
        rows.append({
            "batch": batch,
            "barriers": dnnd.cluster.ledger.barriers,
            "flushes": dnnd.world.flush_count,
            "sim_seconds": res.sim_seconds,
            "iterations": res.iterations,
        })
    _cache["rows"] = rows
    return _cache


def test_smaller_batches_mean_more_barriers(benchmark):
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = {r["batch"]: r for r in out["rows"]}
    assert rows[1 << 8]["barriers"] > rows[1 << 13]["barriers"]
    assert rows[1 << 13]["barriers"] >= rows[0]["barriers"]


def test_convergence_independent_of_batching(benchmark):
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    iters = {r["iterations"] for r in out["rows"]}
    # Batch barriers change message timing, not the algorithm: iteration
    # counts must stay in a tight band.
    assert max(iters) - min(iters) <= 1


def test_print_batching(benchmark):
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table_rows = [
        [("none" if r["batch"] == 0 else f"2^{r['batch'].bit_length() - 1}"),
         r["barriers"], r["flushes"], f"{r['sim_seconds']:.5f}",
         r["iterations"]]
        for r in out["rows"]
    ]
    report("ablation_batching", ascii_table(
        ["batch size", "barriers", "buffer flushes", "sim seconds",
         "iterations"],
        table_rows,
        title=("Ablation: Section 4.4 batch size (paper uses 2^25-2^30 "
               "requests at billion scale)"),
    ))
