"""Table 2 — HNSW parameter survey and configuration selection.

Paper: a wide (M, ef_construction) survey of Hnswlib graphs; for each
DNND graph, the Hnsw graph with similar-or-better query recall at
similar-or-shorter time and minimum construction time is selected
(Hnsw A-D).

Here: the same survey over a scaled (M, efc) grid on the DEEP-like
stand-in, applying the paper's selection rule against the DNND k10
graph.  The printed table is this reproduction's Table 2.
"""


from _common import report, run_dnnd, scaled
from repro.baselines.hnsw import HNSW, HNSWConfig
from repro.core.search import KNNGraphSearcher
from repro.datasets.ann_benchmarks import make_benchmark_dataset
from repro.eval.qps import QueryBenchmark, sweep_ef, sweep_epsilon
from repro.eval.tables import ascii_table

M_GRID = [8, 16, 32]
EFC_GRID = [12, 25, 100]
EFS = [20, 60, 160]

_cache = {}


def run_survey():
    if _cache:
        return _cache
    n = scaled(700)
    train, queries, gt_ids, spec = make_benchmark_dataset(
        "deep1b", n=n, n_queries=max(40, n // 12), k_gt=10, seed=8)
    bench = QueryBenchmark(queries=queries, gt_ids=gt_ids, k=10)

    # Reference DNND k10 curve (the paper's comparison target).
    _, dnnd = run_dnnd(train, k=10, nodes=4, procs_per_node=2,
                       metric=spec.metric, seed=8, optimize=True)
    searcher = KNNGraphSearcher(dnnd._last_result.adjacency, train,
                                metric=spec.metric, seed=0)
    dnnd_points = sweep_epsilon(searcher, bench, "DNND k10",
                                epsilons=[0.0, 0.2, 0.4])
    dnnd_best = max(p.recall for p in dnnd_points)
    dnnd_cost = min(p.mean_distance_evals for p in dnnd_points
                    if p.recall >= dnnd_best - 1e-9)

    survey = []
    for M in M_GRID:
        for efc in EFC_GRID:
            index = HNSW(train, HNSWConfig(M=M, ef_construction=efc, seed=0),
                         metric=spec.metric).build()
            points = sweep_ef(index, bench, f"M{M}/efc{efc}", efs=EFS)
            # Paper's rule: similar-or-better recall at similar-or-lower
            # query cost than the DNND graph.
            qualifying = [p for p in points
                          if p.recall >= dnnd_best - 0.01
                          and p.mean_distance_evals <= dnnd_cost * 1.5]
            survey.append({
                "M": M, "efc": efc,
                "build_evals": index.distance_evals,
                "best_recall": max(p.recall for p in points),
                "qualifies": bool(qualifying),
            })
    # Selection: among qualifying graphs, minimum construction cost.
    qualifying = [s for s in survey if s["qualifies"]]
    selected = (min(qualifying, key=lambda s: s["build_evals"])
                if qualifying else None)
    _cache.update({
        "survey": survey, "selected": selected,
        "dnnd_best": dnnd_best, "dnnd_cost": dnnd_cost,
    })
    return _cache


def test_survey_quality_monotone(benchmark):
    out = benchmark.pedantic(run_survey, rounds=1, iterations=1)
    survey = {(s["M"], s["efc"]): s for s in out["survey"]}
    # Higher efc at fixed M costs more to build.
    for M in M_GRID:
        assert (survey[(M, EFC_GRID[-1])]["build_evals"]
                > survey[(M, EFC_GRID[0])]["build_evals"])


def test_selection_rule_finds_a_config(benchmark):
    out = benchmark.pedantic(run_survey, rounds=1, iterations=1)
    # On an easy scaled dataset some HNSW config should qualify, as
    # Hnsw A/C did in the paper.
    assert out["selected"] is not None


def test_print_table2(benchmark):
    out = benchmark.pedantic(run_survey, rounds=1, iterations=1)
    rows = []
    for s in out["survey"]:
        mark = ""
        if out["selected"] is s:
            mark = "<- selected (Hnsw A analogue)"
        elif s["qualifies"]:
            mark = "qualifies"
        rows.append([s["M"], s["efc"], s["build_evals"],
                     round(s["best_recall"], 4), mark])
    text = ascii_table(
        ["M", "efc", "construction dist evals", "best recall@10", ""],
        rows,
        title=("Table 2 analogue: HNSW parameter survey vs DNND k10 "
               f"(DNND best recall {out['dnnd_best']:.4f} at "
               f"{out['dnnd_cost']:.0f} evals/query)"),
    )
    text += ("\npaper Table 2: Hnsw A = (M=64, efc=50), B = (64, 200), "
             "C = (32, 25), D = (64, 200); ef in 20-1200")
    report("table2_hnsw_survey", text)
