"""Ablation C — Section 4.5 graph optimizations.

Quantifies what the reverse-edge merge and the pruning factor ``m`` buy
at query time: recall@10 and per-query work on the raw k-NNG vs the
optimized graph at m in {1.0, 1.5, 2.0} (paper default 1.5).
"""


from _common import report, run_dnnd, scaled
from repro.core.optimization import optimize_graph
from repro.core.search import KNNGraphSearcher
from repro.datasets.ann_benchmarks import make_benchmark_dataset
from repro.eval.qps import QueryBenchmark
from repro.eval.recall import recall_at_k
from repro.eval.tables import ascii_table

_cache = {}


def run_all():
    if _cache:
        return _cache
    n = scaled(700)
    train, queries, gt_ids, spec = make_benchmark_dataset(
        "deep1b", n=n, n_queries=max(40, n // 12), k_gt=10, seed=11)
    res, _ = run_dnnd(train, k=10, nodes=4, procs_per_node=2,
                      metric=spec.metric, seed=11, optimize=False)
    bench = QueryBenchmark(queries=queries, gt_ids=gt_ids, k=10)

    variants = [("raw k-NNG (no 4.5)", res.graph.to_adjacency())]
    for m in (1.0, 1.5, 2.0):
        variants.append((f"optimized m={m}", optimize_graph(res.graph, m)))

    rows = []
    for label, adj in variants:
        searcher = KNNGraphSearcher(adj, train, metric=spec.metric, seed=0)
        ids, _, stats = searcher.query_batch(queries, l=10, epsilon=0.1)
        rows.append({
            "label": label,
            "recall": recall_at_k(ids, gt_ids),
            "evals": stats["mean_distance_evals"],
            "edges": adj.n_edges,
            "max_degree": int(adj.degrees().max()),
        })
    _cache["rows"] = rows
    return _cache


def test_optimization_improves_recall(benchmark):
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    raw = out["rows"][0]
    m15 = next(r for r in out["rows"] if "1.5" in r["label"])
    assert m15["recall"] >= raw["recall"]


def test_m_controls_degree(benchmark):
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    m10 = next(r for r in out["rows"] if "m=1.0" in r["label"])
    m20 = next(r for r in out["rows"] if "m=2.0" in r["label"])
    assert m10["max_degree"] <= 10
    assert m20["max_degree"] <= 20
    assert m20["edges"] >= m10["edges"]


def test_print_graph_opt(benchmark):
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[r["label"], r["edges"], r["max_degree"],
             round(r["recall"], 4), round(r["evals"], 1)]
            for r in out["rows"]]
    report("ablation_graph_opt", ascii_table(
        ["graph", "edges", "max degree", "recall@10", "dist evals/query"],
        rows,
        title="Ablation: Section 4.5 reverse-edge merge + pruning factor m",
    ))
