"""Ablation E — NN-Descent's rho and delta (Section 3.1 / 5.1.3).

The paper fixes rho = 0.8 and delta = 0.001 for all runs.  This
ablation sweeps both on a DEEP-like stand-in and reports the quality /
cost trade-off each controls:

- ``delta`` bounds the per-iteration update rate ``c / kN``: larger
  values stop earlier with lower recall,
- ``rho`` scales the per-iteration candidate sample: smaller values do
  less work per round but need more rounds.
"""


from _common import report, scaled
from repro.baselines.bruteforce import brute_force_knn_graph
from repro.config import NNDescentConfig
from repro.core.nndescent import NNDescent
from repro.datasets.ann_benchmarks import load_dataset
from repro.eval.convergence import trace_convergence
from repro.eval.recall import graph_recall
from repro.eval.tables import ascii_table

DELTAS = [0.1, 0.01, 0.001, 0.0001]
RHOS = [0.3, 0.5, 0.8, 1.0]

_cache = {}


def run_all():
    if _cache:
        return _cache
    n = scaled(700)
    data, spec = load_dataset("deep1b", n=n, seed=13)
    truth = brute_force_knn_graph(data, k=10, metric=spec.metric)

    delta_rows = []
    for delta in DELTAS:
        cfg = NNDescentConfig(k=10, delta=delta, metric=spec.metric, seed=13)
        res = NNDescent(data, cfg).build()
        delta_rows.append({
            "delta": delta, "iterations": res.iterations,
            "evals": res.distance_evals,
            "recall": graph_recall(res.graph, truth),
        })

    rho_rows = []
    for rho in RHOS:
        cfg = NNDescentConfig(k=10, rho=rho, metric=spec.metric, seed=13)
        res = NNDescent(data, cfg).build()
        rho_rows.append({
            "rho": rho, "iterations": res.iterations,
            "evals": res.distance_evals,
            "recall": graph_recall(res.graph, truth),
        })

    # One traced run showing the c-decay / recall-climb coupling.
    cfg = NNDescentConfig(k=10, delta=0.0001, metric=spec.metric, seed=13)
    _, trace = trace_convergence(NNDescent(data, cfg), truth=truth)

    _cache.update({"delta": delta_rows, "rho": rho_rows, "trace": trace})
    return _cache


def test_delta_controls_quality_cost(benchmark):
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = out["delta"]
    # Tighter delta -> more iterations and at least equal recall.
    assert rows[-1]["iterations"] >= rows[0]["iterations"]
    assert rows[-1]["recall"] >= rows[0]["recall"] - 0.01
    assert rows[-1]["evals"] >= rows[0]["evals"]


def test_rho_controls_per_round_work(benchmark):
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = {r["rho"]: r for r in out["rho"]}
    per_round_low = rows[0.3]["evals"] / rows[0.3]["iterations"]
    per_round_high = rows[1.0]["evals"] / rows[1.0]["iterations"]
    assert per_round_high > per_round_low
    # Paper default 0.8 reaches high recall.
    assert rows[0.8]["recall"] > 0.9


def test_update_counter_decays(benchmark):
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert out["trace"].monotone_decay()
    # Recall must climb as c decays.
    recalls = [r for r in out["trace"].recalls if r is not None]
    assert recalls[-1] >= recalls[0]


def test_print_nnd_params(benchmark):
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    text = []
    text.append(ascii_table(
        ["delta", "iterations", "dist evals", "recall"],
        [[r["delta"], r["iterations"], r["evals"], round(r["recall"], 4)]
         for r in out["delta"]],
        title="Ablation: delta (paper uses 0.001)",
    ))
    text.append("")
    text.append(ascii_table(
        ["rho", "iterations", "dist evals", "recall"],
        [[r["rho"], r["iterations"], r["evals"], round(r["recall"], 4)]
         for r in out["rho"]],
        title="Ablation: rho (paper uses 0.8)",
    ))
    text.append("")
    text.append(out["trace"].report())
    report("ablation_nnd_params", "\n".join(text))
