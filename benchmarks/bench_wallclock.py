"""Wall-clock benchmark: scalar vs batched execution engine.

Unlike the other benches (which report *simulated* cluster seconds from
the cost model), this one times the *host* wall clock: the batch
execution engine (``DNNDConfig.batch_exec``) is a pure implementation
optimization — coalesced YGM delivery, rowwise distance kernels, bulk
heap updates — that must produce bit-identical results while running the
simulation several times faster.

Run directly::

    python benchmarks/bench_wallclock.py            # full run
    python benchmarks/bench_wallclock.py --quick    # CI smoke (small size)
    python benchmarks/bench_wallclock.py --backend parallel --workers 4

Besides the scalar-vs-batched comparison (always run under the sim
backend, whose bit-identity contract it asserts), the bench times the
batched engine under each requested ``--backend`` and records recall
against brute force, so the JSON captures the execution-backend
trade-off: sim is deterministic and cost-modeled, parallel and process
must be at least as fast with recall@k within +-0.01.  A third section
times metrics-on vs metrics-off (``DNNDConfig.metrics``): the
default-on observability layer must cost <2% wall clock (and zero
simulation divergence) because it only synchronizes counters at
barriers.

The **kernel axis** (``kernel_results``) compares the rowwise distance
kernels against the blocked tiled-GEMM kernels (DESIGN.md section 17)
on float32 data at the issue's acceptance instance n=2000 d=32 — run
even under ``--quick`` because perf-smoke CI gates blocked >= 1.0x on
the kernel-bound pairwise workload and recall parity within 0.005 on
the full build.

The **scale axis** (``--quick`` shrinks it, ``--xl`` extends it) is the
process backend's reason to exist: at n=50k+ the GIL caps the parallel
backend at ~1x while worker processes scale with the core count.  The
record always includes ``cpu_count`` because the result is
machine-bound: on a single-core runner the process backend *cannot*
beat sim (IPC overhead, no parallelism to buy it back), so the
process-vs-sim perf gate only fails on machines with >=2 cores —
elsewhere the measurement is recorded and annotated, not asserted.

Writes ``BENCH_wallclock.json`` at the repository root.  Timing is
best-of-N (``--repeats``, default 3): the minimum over repeats is the
standard robust estimator for wall-clock comparisons on a noisy machine
— any one-off scheduler hiccup inflates a single run, never deflates it.
Exits non-zero if the batched engine is *slower* than the scalar path
(the CI perf-smoke contract); the >=3x target at n=2000 is asserted by
the experiment record, not here, to keep CI robust to slow runners.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro import DNND, ClusterConfig, CommOptConfig, DNNDConfig, NNDescentConfig
from repro.baselines.bruteforce import brute_force_neighbors
from repro.core.graph import KNNGraph
from repro.eval.recall import graph_recall

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))
OUT_PATH = os.path.join(REPO_ROOT, "BENCH_wallclock.json")

#: (n, dim) instances; k / cluster shape / batch_size stay fixed so the
#: two engines run the exact same simulated workload.
FULL_SIZES = [(500, 16), (2000, 32)]
QUICK_SIZES = [(400, 16)]

#: Scale axis (batched engine only — the scalar path is hopeless here):
#: the n=50k-500k range the process backend opens.  ``--quick`` runs a
#: small stand-in so CI exercises the code path; ``--xl`` extends the
#: sweep for real machines with cores + minutes to spend.
SCALE_SIZES = [(50_000, 16)]
SCALE_SIZES_QUICK = [(8_000, 16)]
SCALE_SIZES_XL = [(50_000, 16), (200_000, 16)]

#: Kernel axis (rowwise vs blocked, DESIGN.md section 17): the issue's
#: acceptance instance runs even under ``--quick`` because the CI
#: perf-smoke job gates blocked >= 1.0x at n=2000 d=32.  float32 is the
#: regime the blocked kernels exist for — native-dtype GEMM halves the
#: memory traffic the rowwise kernels spend upcasting to float64.
KERNEL_SIZES = [(2000, 32)]
K = 10
SEED = 0


def _build(data: np.ndarray, batch_exec: bool, backend: str = "sim",
           workers: int = 0, metrics: bool = True,
           kernel: str | None = "rowwise"):
    cfg = DNNDConfig(
        nnd=NNDescentConfig(k=K, metric="sqeuclidean", seed=SEED),
        comm_opts=CommOptConfig.optimized(),
        batch_size=1 << 13,
        batch_exec=batch_exec,
        backend=backend,
        kernel=kernel,
        workers=workers,
        metrics=metrics,
    )
    dnnd = DNND(data, cfg, cluster=ClusterConfig(nodes=4, procs_per_node=2))
    try:
        return dnnd.build()
    finally:
        dnnd.close()


def _time_build(data: np.ndarray, batch_exec: bool, repeats: int,
                backend: str = "sim", workers: int = 0,
                metrics: bool = True, kernel: str | None = "rowwise"):
    """(best wall seconds, last BuildResult)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = _build(data, batch_exec, backend, workers, metrics,
                        kernel=kernel)
        best = min(best, time.perf_counter() - t0)
    return best, result


def run(sizes, repeats: int):
    rows = []
    for n, dim in sizes:
        rng = np.random.default_rng(7)
        data = rng.standard_normal((n, dim))
        t_scalar, r_scalar = _time_build(data, False, repeats)
        t_batch, r_batch = _time_build(data, True, repeats)
        if not (np.array_equal(r_scalar.graph.ids, r_batch.graph.ids)
                and r_scalar.graph.dists.tobytes() == r_batch.graph.dists.tobytes()
                and r_scalar.sim_seconds == r_batch.sim_seconds):
            raise SystemExit(
                f"batched engine output diverged from scalar at n={n}, d={dim}")
        rows.append({
            "n": n, "dim": dim, "k": K,
            "scalar_seconds": round(t_scalar, 4),
            "batched_seconds": round(t_batch, 4),
            "speedup": round(t_scalar / t_batch, 3),
            "iterations": r_batch.iterations,
            "distance_evals": r_batch.distance_evals,
        })
        print(f"n={n:5d} d={dim:3d}  scalar {t_scalar:7.2f}s  "
              f"batched {t_batch:7.2f}s  speedup {t_scalar / t_batch:5.2f}x  "
              f"(bit-identical: yes)")
    return rows


def run_backends(sizes, repeats: int, backends, workers: int):
    """Time the batched engine per execution backend; recall vs brute
    force goes in the record because the parallel backend's contract is
    statistical (recall@k within +-0.01 of sim), not bit-identity."""
    rows = []
    for n, dim in sizes:
        rng = np.random.default_rng(7)
        data = rng.standard_normal((n, dim))
        ids, dists = brute_force_neighbors(data, data, K, exclude_self=True)
        truth = KNNGraph(ids, dists)
        per_backend = {}
        for backend in backends:
            w = workers if backend in ("parallel", "process") else 0
            secs, result = _time_build(data, True, repeats, backend, w)
            per_backend[backend] = {
                "seconds": round(secs, 4),
                "recall": round(graph_recall(result.graph, truth), 4),
            }
            print(f"n={n:5d} d={dim:3d}  backend={backend:8s} "
                  f"workers={w:2d}  {secs:7.2f}s  "
                  f"recall@{K} {per_backend[backend]['recall']:.4f}")
        row = {"n": n, "dim": dim, "k": K, "workers": workers,
               "backends": per_backend}
        for contender in ("parallel", "process"):
            if "sim" in per_backend and contender in per_backend:
                row[f"{contender}_speedup"] = round(
                    per_backend["sim"]["seconds"]
                    / per_backend[contender]["seconds"], 3)
                row[f"{contender}_recall_delta"] = round(
                    per_backend[contender]["recall"]
                    - per_backend["sim"]["recall"], 4)
        if "parallel_speedup" in row:  # legacy keys, kept for tooling
            row["recall_delta"] = row["parallel_recall_delta"]
        rows.append(row)
    return rows


def run_scale(sizes, backends, workers: int):
    """The large-n axis: batched engine, one timed build per backend
    (no repeats — a single n=50k build is minutes, and the comparison
    is between backends on the *same* machine in the same session).
    Recall against brute force is skipped: the O(n^2) ground truth at
    n=50k costs more than every build combined."""
    rows = []
    for n, dim in sizes:
        rng = np.random.default_rng(7)
        data = rng.standard_normal((n, dim)).astype(np.float64)
        per_backend = {}
        for backend in backends:
            w = workers if backend in ("parallel", "process") else 0
            secs, result = _time_build(data, True, 1, backend, w)
            per_backend[backend] = {
                "seconds": round(secs, 4),
                "iterations": result.iterations,
                "distance_evals": result.distance_evals,
            }
            print(f"n={n:6d} d={dim:3d}  backend={backend:8s} "
                  f"workers={w:2d}  {secs:8.2f}s  "
                  f"iters {result.iterations}")
        row = {"n": n, "dim": dim, "k": K, "workers": workers,
               "backends": per_backend}
        if "sim" in per_backend and "process" in per_backend:
            row["process_speedup"] = round(
                per_backend["sim"]["seconds"]
                / per_backend["process"]["seconds"], 3)
        rows.append(row)
    return rows


def run_kernels(repeats: int):
    """Kernel axis: rowwise vs blocked (DESIGN.md section 17).

    Two measurements per instance on float32 data:

    - the **gated** one is the kernel-bound workload — brute-force
      pairwise distances — where the blocked tiled GEMM is the whole
      story and must be at least as fast as the rowwise kernels;
    - the full DNND build is **recorded** alongside (its hot path is
      paired-rows distances with no matrix-product structure, so the
      kernel choice moves it little either way), with the recall delta
      between the two builds, which must sit inside the 0.005 parity
      gate the conformance suite pins.
    """
    rows = []
    for n, dim in KERNEL_SIZES:
        rng = np.random.default_rng(7)
        data = rng.standard_normal((n, dim)).astype(np.float32)
        ids, dists = brute_force_neighbors(data, data, K, exclude_self=True)
        truth = KNNGraph(ids, dists)
        per_kernel = {}
        for kernel in ("rowwise", "blocked"):
            best = float("inf")
            for _ in range(max(3, repeats)):
                t0 = time.perf_counter()
                brute_force_neighbors(data, data, K, exclude_self=True,
                                      kernel=kernel)
                best = min(best, time.perf_counter() - t0)
            t_build, r_build = _time_build(data, True, repeats,
                                           kernel=kernel)
            snap = r_build.metrics.snapshot()["counters"]
            per_kernel[kernel] = {
                "pairwise_seconds": round(best, 4),
                "build_seconds": round(t_build, 4),
                "recall": round(graph_recall(r_build.graph, truth), 4),
                "tile_flops": snap["kernel.tile_flops"],
                "kernel_fallbacks": snap["kernel.fallbacks"],
            }
            print(f"n={n:5d} d={dim:3d}  kernel={kernel:8s} "
                  f"pairwise {best:7.4f}s  build {t_build:7.2f}s  "
                  f"recall@{K} {per_kernel[kernel]['recall']:.4f}")
        row = {"n": n, "dim": dim, "k": K, "dtype": "float32",
               "kernels": per_kernel,
               "blocked_speedup": round(
                   per_kernel["rowwise"]["pairwise_seconds"]
                   / per_kernel["blocked"]["pairwise_seconds"], 3),
               "recall_delta": round(
                   per_kernel["blocked"]["recall"]
                   - per_kernel["rowwise"]["recall"], 4)}
        rows.append(row)
        print(f"n={n:5d} d={dim:3d}  blocked pairwise speedup "
              f"{row['blocked_speedup']:5.2f}x  recall delta "
              f"{row['recall_delta']:+.4f}")
    return rows


def run_metrics_overhead(sizes, repeats: int):
    """Metrics-on vs metrics-off: the observability layer's cost.

    The registry is synchronized at barrier granularity (never per
    message), so metrics-on must be free to within timing noise — the
    acceptance bar is <2% on a quiet machine (asserted by ``main`` for
    full runs; quick/CI runs use a looser noise margin because the
    builds are short enough for scheduler jitter to dominate).  The two
    builds must also produce bit-identical graphs: observation cannot
    perturb the simulation.
    """
    rows = []
    for n, dim in sizes:
        rng = np.random.default_rng(7)
        data = rng.standard_normal((n, dim))
        # Interleave the two arms and alternate which goes first: the
        # true cost (a ~1 ms counter sync per build) is far below
        # machine drift between two back-to-back timing blocks, so
        # block-then-block measurement would report pure noise.
        t_on = t_off = float("inf")
        r_on = r_off = None
        for i in range(max(2, repeats)):
            arms = [(True,), (False,)] if i % 2 == 0 else [(False,), (True,)]
            for (metrics_on,) in arms:
                t0 = time.perf_counter()
                result = _build(data, True, metrics=metrics_on)
                dt = time.perf_counter() - t0
                if metrics_on:
                    t_on, r_on = min(t_on, dt), result
                else:
                    t_off, r_off = min(t_off, dt), result
        if not (np.array_equal(r_on.graph.ids, r_off.graph.ids)
                and r_on.sim_seconds == r_off.sim_seconds):
            raise SystemExit(
                f"metrics-on build diverged from metrics-off at n={n}, d={dim}")
        overhead = t_on / t_off - 1.0
        rows.append({
            "n": n, "dim": dim, "k": K,
            "metrics_on_seconds": round(t_on, 4),
            "metrics_off_seconds": round(t_off, 4),
            "overhead": round(overhead, 4),
        })
        print(f"n={n:5d} d={dim:3d}  metrics on {t_on:7.2f}s  "
              f"off {t_off:7.2f}s  overhead {overhead:+7.2%}  "
              f"(bit-identical: yes)")
    return rows


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small instance only (CI perf smoke)")
    ap.add_argument("--repeats", type=int, default=3,
                    help="timing repeats; best-of-N is reported")
    ap.add_argument("--backend", action="append",
                    choices=["sim", "parallel", "process"],
                    help="execution backend(s) for the backend-comparison "
                         "and scale sections; repeatable (default: all)")
    ap.add_argument("--workers", type=int, default=4,
                    help="worker count for the parallel/process backends "
                         "in the small-axis comparison")
    ap.add_argument("--scale-workers", type=int, default=8,
                    help="worker count for the scale axis (the paper "
                         "regime: one worker process per core)")
    ap.add_argument("--xl", action="store_true",
                    help="extend the scale axis to n=200k (multi-core "
                         "machines with minutes to spend)")
    ap.add_argument("--no-scale", action="store_true",
                    help="skip the large-n scale axis entirely")
    args = ap.parse_args(argv)

    sizes = QUICK_SIZES if args.quick else FULL_SIZES
    backends = args.backend or ["sim", "parallel", "process"]
    cpu_count = os.cpu_count() or 1
    rows = run(sizes, max(1, args.repeats))
    backend_rows = run_backends(sizes, max(1, args.repeats), backends,
                                args.workers)
    kernel_rows = run_kernels(max(1, args.repeats))
    metrics_rows = run_metrics_overhead(sizes, max(1, args.repeats))
    scale_rows = []
    if not args.no_scale:
        scale_sizes = (SCALE_SIZES_QUICK if args.quick
                       else SCALE_SIZES_XL if args.xl else SCALE_SIZES)
        scale_rows = run_scale(
            scale_sizes,
            [b for b in backends if b in ("sim", "process")],
            args.scale_workers)
    payload = {
        "benchmark": "wallclock scalar-vs-batched execution engine",
        "repeats": max(1, args.repeats),
        "quick": bool(args.quick),
        "cpu_count": cpu_count,
        "results": rows,
        "backend_results": backend_rows,
        "kernel_results": kernel_rows,
        "metrics_overhead": metrics_rows,
        "scale_results": scale_rows,
    }
    with open(OUT_PATH, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {OUT_PATH}")

    slow = [r for r in rows if r["speedup"] < 1.0]
    if slow:
        print(f"FAIL: batched engine slower than scalar at {slow}")
        return 1
    # Kernel-axis gate (runs in quick mode too — this is the perf-smoke
    # contract): the blocked tiled GEMM must be at least as fast as the
    # rowwise kernels on the kernel-bound pairwise workload, and the
    # blocked build's recall must sit inside the 0.005 parity gate.
    for row in kernel_rows:
        if row["blocked_speedup"] < 1.0:
            print(f"FAIL: blocked kernel slower than rowwise at "
                  f"n={row['n']}, d={row['dim']} "
                  f"(speedup {row['blocked_speedup']}x)")
            return 1
        if abs(row["recall_delta"]) > 0.005:
            print(f"FAIL: blocked-kernel recall deviates from rowwise "
                  f"by {row['recall_delta']} at n={row['n']}")
            return 1
    if not args.quick and len(backend_rows) > 1:
        # The backend contract is asserted only at the largest instance:
        # small ones are dominated by fixed costs, not the message path.
        last = backend_rows[-1]
        if last.get("parallel_speedup", 1.0) < 1.0:
            print(f"FAIL: parallel backend slower than sim at "
                  f"n={last['n']}, d={last['dim']}")
            return 1
        for contender in ("parallel", "process"):
            delta = last.get(f"{contender}_recall_delta", 0.0)
            if abs(delta) > 0.01:
                print(f"FAIL: {contender} recall deviates from sim by "
                      f"{delta}")
                return 1
    if scale_rows:
        # Process-vs-sim perf gate, core-count-aware: worker processes
        # can only beat the inline sim when the machine has cores for
        # them — on a single-core runner the IPC tax buys nothing, so
        # the measurement is recorded but not asserted.
        last = scale_rows[-1]
        speedup = last.get("process_speedup")
        if speedup is not None:
            if not args.quick and cpu_count >= 2 and speedup < 1.0:
                print(f"FAIL: process backend slower than sim at "
                      f"n={last['n']} with {cpu_count} cores "
                      f"(speedup {speedup}x)")
                return 1
            if cpu_count < 2:
                print(f"note: single-core machine — process speedup "
                      f"{speedup}x recorded, gate not asserted")
    # Observability cost gate: <2% on full runs; quick/CI runs get a
    # noise margin because sub-second builds make relative timing
    # jitter-dominated on shared runners.
    overhead_cap = 0.15 if args.quick else 0.02
    costly = [r for r in metrics_rows if r["overhead"] > overhead_cap]
    if costly:
        print(f"FAIL: metrics overhead above {overhead_cap:.0%} at {costly}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
