"""Wall-clock benchmark: scalar vs batched execution engine.

Unlike the other benches (which report *simulated* cluster seconds from
the cost model), this one times the *host* wall clock: the batch
execution engine (``DNNDConfig.batch_exec``) is a pure implementation
optimization — coalesced YGM delivery, rowwise distance kernels, bulk
heap updates — that must produce bit-identical results while running the
simulation several times faster.

Run directly::

    python benchmarks/bench_wallclock.py            # full run
    python benchmarks/bench_wallclock.py --quick    # CI smoke (small size)

Writes ``BENCH_wallclock.json`` at the repository root.  Timing is
best-of-N (``--repeats``, default 3): the minimum over repeats is the
standard robust estimator for wall-clock comparisons on a noisy machine
— any one-off scheduler hiccup inflates a single run, never deflates it.
Exits non-zero if the batched engine is *slower* than the scalar path
(the CI perf-smoke contract); the >=3x target at n=2000 is asserted by
the experiment record, not here, to keep CI robust to slow runners.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro import DNND, ClusterConfig, CommOptConfig, DNNDConfig, NNDescentConfig

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))
OUT_PATH = os.path.join(REPO_ROOT, "BENCH_wallclock.json")

#: (n, dim) instances; k / cluster shape / batch_size stay fixed so the
#: two engines run the exact same simulated workload.
FULL_SIZES = [(500, 16), (2000, 32)]
QUICK_SIZES = [(400, 16)]
K = 10
SEED = 0


def _build(data: np.ndarray, batch_exec: bool):
    cfg = DNNDConfig(
        nnd=NNDescentConfig(k=K, metric="sqeuclidean", seed=SEED),
        comm_opts=CommOptConfig.optimized(),
        batch_size=1 << 13,
        batch_exec=batch_exec,
    )
    dnnd = DNND(data, cfg, cluster=ClusterConfig(nodes=4, procs_per_node=2))
    result = dnnd.build()
    return result


def _time_build(data: np.ndarray, batch_exec: bool, repeats: int):
    """(best wall seconds, last BuildResult)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = _build(data, batch_exec)
        best = min(best, time.perf_counter() - t0)
    return best, result


def run(sizes, repeats: int):
    rows = []
    for n, dim in sizes:
        rng = np.random.default_rng(7)
        data = rng.standard_normal((n, dim))
        t_scalar, r_scalar = _time_build(data, False, repeats)
        t_batch, r_batch = _time_build(data, True, repeats)
        if not (np.array_equal(r_scalar.graph.ids, r_batch.graph.ids)
                and r_scalar.graph.dists.tobytes() == r_batch.graph.dists.tobytes()
                and r_scalar.sim_seconds == r_batch.sim_seconds):
            raise SystemExit(
                f"batched engine output diverged from scalar at n={n}, d={dim}")
        rows.append({
            "n": n, "dim": dim, "k": K,
            "scalar_seconds": round(t_scalar, 4),
            "batched_seconds": round(t_batch, 4),
            "speedup": round(t_scalar / t_batch, 3),
            "iterations": r_batch.iterations,
            "distance_evals": r_batch.distance_evals,
        })
        print(f"n={n:5d} d={dim:3d}  scalar {t_scalar:7.2f}s  "
              f"batched {t_batch:7.2f}s  speedup {t_scalar / t_batch:5.2f}x  "
              f"(bit-identical: yes)")
    return rows


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small instance only (CI perf smoke)")
    ap.add_argument("--repeats", type=int, default=3,
                    help="timing repeats; best-of-N is reported")
    args = ap.parse_args(argv)

    sizes = QUICK_SIZES if args.quick else FULL_SIZES
    rows = run(sizes, max(1, args.repeats))
    payload = {
        "benchmark": "wallclock scalar-vs-batched execution engine",
        "repeats": max(1, args.repeats),
        "quick": bool(args.quick),
        "results": rows,
    }
    with open(OUT_PATH, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {OUT_PATH}")

    slow = [r for r in rows if r["speedup"] < 1.0]
    if slow:
        print(f"FAIL: batched engine slower than scalar at {slow}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
