"""Chaos harness: randomized fault plans against supervised recovery.

The fault-tolerance contract (DESIGN.md section 13) says a build under a
seeded chaos plan — message drops, duplicates, delays, plus a rank crash
— must either *complete through supervised recovery* with recall@k
within ``EPSILON`` of the fault-free build, or fail loudly.  This
harness checks that contract on **both** execution backends:

- run 0 per backend: drops/dups/delays + a mid-build rank crash,
  recovered from a checkpoint by the supervisor (retry-with-backoff,
  transport repair, checkpoint restore),
- run 1 per backend: the same fault families with a crash handled in
  **degraded mode** — the dead rank is excluded, the build continues,
  and the rank is re-admitted + its shard repaired before the gather.

Run directly::

    python benchmarks/chaos_build.py                 # default master seed
    python benchmarks/chaos_build.py --seed 1234     # another chaos draw
    python benchmarks/chaos_build.py --runs 3        # more runs per backend

Every fault plan is derived from the master seed (printed up front, so a
CI failure is reproducible locally with ``--seed``).  Exits non-zero if
any run aborts or its recall regresses more than ``EPSILON`` below the
fault-free reference.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro import (
    ClusterConfig,
    DNND,
    DNNDConfig,
    FaultPlan,
    NNDescentConfig,
    brute_force_knn_graph,
    graph_recall,
)

N = 500
DIM = 16
K = 10
NODES, PROCS = 2, 2
DATA_SEED = 11
#: Maximum tolerated recall@k drop vs the fault-free build for a
#: supervised-recovery run (checkpoint restore replays lost state, so
#: the result must be essentially equivalent).
EPSILON = 0.005
#: Degraded mode trades graph quality for availability: the dead rank's
#: shard restarts from keyed reinit + survivor donations and gets a
#: bounded number of repair rounds, so its envelope is looser.
EPSILON_DEGRADED = 0.05
BACKENDS = ("sim", "parallel")


def _config(backend: str) -> DNNDConfig:
    return DNNDConfig(nnd=NNDescentConfig(k=K, seed=DATA_SEED),
                      backend=backend, workers=4)


def draw_plan(rng: np.random.Generator, crash_rank: int,
              crash_iteration: int) -> FaultPlan:
    """One randomized chaos plan: every fault family at a rate drawn
    from the master-seeded stream, plus one scheduled rank crash."""
    return FaultPlan(
        seed=int(rng.integers(1, 2**31)),
        drop_rate=float(rng.uniform(0.01, 0.08)),
        dup_rate=float(rng.uniform(0.0, 0.05)),
        delay_rate=float(rng.uniform(0.0, 0.10)),
        max_delay_ticks=int(rng.integers(1, 4)),
        crashes=((crash_iteration, crash_rank),),
    )


def chaos_run(data, backend: str, plan: FaultPlan, degraded: bool,
              workdir: str) -> "tuple":
    """Build under ``plan``; returns ``(result, recall)``."""
    dnnd = DNND(data, _config(backend),
                cluster=ClusterConfig(nodes=NODES, procs_per_node=PROCS),
                fault_plan=plan, reliable=True)
    ckpt = os.path.join(workdir, f"ckpt-{backend}-{plan.seed}")
    result = dnnd.build(checkpoint_path=None if degraded else ckpt,
                        checkpoint_every=0 if degraded else 1,
                        degraded=degraded)
    return result, result.graph


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--seed", type=int, default=20230823,
                    help="master seed for the chaos draws (printed; rerun "
                         "with the printed value to reproduce a CI failure)")
    ap.add_argument("--runs", type=int, default=2,
                    help="chaos runs per backend (default 2: one supervised "
                         "recovery, one degraded; extra runs alternate)")
    args = ap.parse_args(argv)

    print(f"chaos master seed: {args.seed}")
    rng = np.random.default_rng(args.seed)
    data = rng.standard_normal((N, DIM)).astype(np.float32)
    truth = brute_force_knn_graph(data, k=K)
    world = NODES * PROCS

    # Fault-free reference (sim backend): the recall bar every chaos run
    # must clear to within EPSILON.
    ref = DNND(data, _config("sim"),
               cluster=ClusterConfig(nodes=NODES, procs_per_node=PROCS)).build()
    ref_recall = graph_recall(ref.graph, truth)
    print(f"fault-free reference recall@{K}: {ref_recall:.4f}")

    failures = []
    with tempfile.TemporaryDirectory(prefix="chaos-") as workdir:
        for backend in BACKENDS:
            for run in range(args.runs):
                degraded = run % 2 == 1
                mode = "degraded" if degraded else "recovery"
                crash_rank = int(rng.integers(0, world))
                crash_iteration = int(rng.integers(1, 3))
                plan = draw_plan(rng, crash_rank, crash_iteration)
                label = (f"{backend}/{mode} run {run}: crash rank "
                         f"{crash_rank} at iteration {crash_iteration}, "
                         f"drop={plan.drop_rate:.3f} dup={plan.dup_rate:.3f} "
                         f"delay={plan.delay_rate:.3f}")
                try:
                    result, graph = chaos_run(data, backend, plan, degraded,
                                              workdir)
                except Exception as exc:  # noqa: BLE001 - abort = failure
                    print(f"FAIL {label}: aborted: {exc!r}")
                    failures.append(label)
                    continue
                recall = graph_recall(graph, truth)
                counters = result.metrics.snapshot()["counters"]
                detected = counters.get("faults.detected")
                recovery = counters.get("recovery.attempts")
                detail = (f"recall@{K}={recall:.4f} "
                          f"detected={detected} recovery.attempts={recovery} "
                          f"recoveries={result.recoveries} "
                          f"degraded_ranks={list(result.degraded_ranks)}")
                eps = EPSILON_DEGRADED if degraded else EPSILON
                if recall < ref_recall - eps:
                    print(f"FAIL {label}: {detail} "
                          f"(regression > {eps} vs {ref_recall:.4f})")
                    failures.append(label)
                else:
                    print(f"ok   {label}: {detail}")

    if failures:
        print(f"\n{len(failures)} chaos run(s) failed "
              f"(master seed {args.seed})")
        return 1
    print("\nall chaos runs completed within the recall envelope")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
