"""Figure 3 / Table 3 — k-NNG construction time vs compute nodes.

Paper (DEEP-1B): Hnsw A 5.90h, Hnsw B 22.60h on one node; DNND k10
6.96h@4 -> 1.84h@16 (3.8x) -> 1.50h@32; k20 10.62/5.18/3.74 at
8/16/32; k30 10.29@16, 6.58@32.  BigANN shows the same trend.

Here: the same grid on scaled stand-ins.  DNND times are the cost
model's simulated seconds; HNSW times are its distance-evaluation count
divided by the paper's 256 threads under the same per-evaluation cost.
All values are reported both raw and calibrated to the paper's scale
(one global factor chosen so DEEP-like DNND k10 @ 4 nodes = 6.96 h),
so shape comparisons — who wins, scaling factors, flattening — are
direct.
"""

import pytest

from _common import report, run_dnnd, scaled
from repro.baselines.hnsw import HNSW, HNSWConfig
from repro.datasets.ann_benchmarks import load_dataset
from repro.eval.tables import ascii_table
from repro.runtime.netmodel import NetworkModel

NODES = [4, 8, 16, 32]
GRID = {10: [4, 8, 16, 32], 20: [8, 16, 32], 30: [16, 32]}
HNSW_CONFIGS = {
    "deep1b": {"Hnsw A": HNSWConfig(M=8, ef_construction=12, seed=0),
               "Hnsw B": HNSWConfig(M=32, ef_construction=200, seed=0)},
    "bigann": {"Hnsw C": HNSWConfig(M=8, ef_construction=12, seed=0),
               "Hnsw D": HNSWConfig(M=32, ef_construction=200, seed=0)},
}

# The paper runs Hnswlib with 256 threads on a 128-rank-per-node
# machine, i.e. two nodes' worth of DNND ranks; our simulated nodes
# carry `procs_per_node=2` ranks, so the Hnswlib analogue gets
# 2 x 2 = 4 thread-equivalents to keep the parallelism ratio.
HNSW_THREAD_EQUIV = 4
PAPER = {
    "deep1b": {"Hnsw A": {1: 5.90}, "Hnsw B": {1: 22.60},
               "DNND k10": {4: 6.96, 8: 3.87, 16: 1.84, 32: 1.50},
               "DNND k20": {8: 10.62, 16: 5.18, 32: 3.74},
               "DNND k30": {16: 10.29, 32: 6.58}},
    "bigann": {"Hnsw C": {1: 1.70}, "Hnsw D": {1: 16.50},
               "DNND k10": {4: 5.45, 8: 2.92, 16: 1.27, 32: 1.24},
               "DNND k20": {8: 8.19, 16: 3.50, 32: 3.05},
               "DNND k30": {16: 6.84, 32: 5.83}},
}

_cache = {}


def run_dataset(name: str):
    """All DNND and HNSW runs for one dataset; returns sim seconds."""
    if name in _cache:
        return _cache[name]
    n = scaled(1000)
    data, spec = load_dataset(name, n=n, seed=4)
    net = NetworkModel()
    times = {}
    for k, node_list in GRID.items():
        for nodes in node_list:
            res, _ = run_dnnd(data, k=k, nodes=nodes, procs_per_node=2,
                              metric=spec.metric, seed=4, net=net,
                              optimize=True)
            times[(f"DNND k{k}", nodes)] = res.sim_seconds
    dim = data.shape[1]
    for label, cfg in HNSW_CONFIGS[name].items():
        index = HNSW(data, cfg, metric=spec.metric).build()
        # Shared-memory baseline on one node (Section 5.3.2), with the
        # paper's thread-to-rank parallelism ratio preserved.
        times[(label, 1)] = (index.distance_evals * net.distance_cost(dim)
                             / HNSW_THREAD_EQUIV)
    _cache[name] = times
    return times


@pytest.mark.parametrize("name", ["deep1b", "bigann"])
def test_fig3_strong_scaling(benchmark, name):
    times = benchmark.pedantic(lambda: run_dataset(name), rounds=1, iterations=1)
    k10 = {nodes: times[("DNND k10", nodes)] for nodes in GRID[10]}
    # Monotone improvement over the scaling range the paper reports
    # (4 -> 16), with a paper-like scaling factor.
    assert k10[8] < k10[4]
    assert k10[16] < k10[8]
    speedup_4_to_16 = k10[4] / k10[16]
    assert 1.5 < speedup_4_to_16 <= 4.5, speedup_4_to_16


@pytest.mark.parametrize("name", ["deep1b", "bigann"])
def test_fig3_k_ordering(benchmark, name):
    # Larger k costs more at equal node count (the reason the paper
    # needs more minimum nodes for larger k).
    times = benchmark.pedantic(lambda: run_dataset(name), rounds=1, iterations=1)
    assert times[("DNND k20", 16)] > times[("DNND k10", 16)]
    assert times[("DNND k30", 16)] > times[("DNND k20", 16)]


@pytest.mark.parametrize("name,labels", [("deep1b", ("Hnsw A", "Hnsw B")),
                                         ("bigann", ("Hnsw C", "Hnsw D"))])
def test_fig3_hnsw_bracketing(benchmark, name, labels):
    """The paper's headline comparison: the cheap Hnsw config builds
    fast, but DNND at 16 nodes beats the high-quality Hnsw config
    (by 4.4x / 4.7x in the paper)."""
    times = benchmark.pedantic(lambda: run_dataset(name), rounds=1, iterations=1)
    cheap, best = labels
    assert times[(cheap, 1)] < times[(best, 1)]
    speedup = times[(best, 1)] / times[("DNND k20", 16)]
    assert speedup > 1.5, speedup


def test_print_table3(benchmark):
    def run():
        return {name: run_dataset(name) for name in ("deep1b", "bigann")}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    # Calibrate: one global factor maps simulated seconds onto the
    # paper's hour scale at the DEEP k10 / 4-node anchor point.
    anchor = results["deep1b"][("DNND k10", 4)]
    factor = 6.96 / anchor
    lines = []
    for name in ("deep1b", "bigann"):
        times = results[name]
        series = sorted({label for label, _ in times})
        rows = []
        for label in series:
            row = [label]
            for nodes in [1] + NODES:
                val = times.get((label, nodes))
                paper_val = PAPER[name].get(label, {}).get(nodes)
                if val is None:
                    row.append("-")
                else:
                    cal = val * factor
                    cell = f"{cal:.2f}"
                    if paper_val is not None:
                        cell += f" (paper {paper_val})"
                    row.append(cell)
            rows.append(row)
        lines.append(ascii_table(
            ["series"] + [f"{n} node(s)" for n in [1] + NODES],
            rows,
            title=(f"Table 3 ({name}): construction time, calibrated hours "
                   f"(global factor from DEEP k10@4 = 6.96h)"),
        ))
        k10 = {nodes: times[("DNND k10", nodes)] for nodes in GRID[10]}
        lines.append(
            f"{name}: k10 scaling 4->16 nodes = {k10[4] / k10[16]:.2f}x "
            f"(paper: {PAPER[name]['DNND k10'][4] / PAPER[name]['DNND k10'][16]:.2f}x); "
            f"16->32 = {k10[16] / k10[32]:.2f}x (flattening)\n"
        )
        from repro.eval.plots import scaling_plot
        dnnd_series = {}
        for (label, nodes), secs in times.items():
            if label.startswith("DNND"):
                dnnd_series.setdefault(label, {})[nodes] = secs * factor
        lines.append(scaling_plot(
            dnnd_series, title=f"Figure 3 ({name}): calibrated hours vs nodes"))
        lines.append("")
    report("fig3_table3_scaling", "\n".join(lines))
