"""Micro-benchmarks of the substrates (true pytest-benchmark timings).

These are the classic repeated-measurement benches: distance kernels,
heap updates, YGM message round-trips, partition hashing, and search.
They catch performance regressions in the hot paths that every
experiment above depends on.
"""

import numpy as np
import pytest

from repro.baselines.bruteforce import brute_force_knn_graph
from repro.config import ClusterConfig
from repro.core.heap import NeighborHeap
from repro.core.optimization import optimize_graph
from repro.core.search import KNNGraphSearcher
from repro.distances import dense, sparse
from repro.runtime.partition import HashPartitioner
from repro.runtime.simmpi import SimCluster
from repro.runtime.ygm import YGMWorld

rng = np.random.default_rng(0)


class TestDistanceKernels:
    a96 = rng.random(96)
    b96 = rng.random(96)
    X = rng.random((1000, 96))

    def test_sqeuclidean_scalar(self, benchmark):
        benchmark(dense.sqeuclidean, self.a96, self.b96)

    def test_cosine_scalar(self, benchmark):
        benchmark(dense.cosine, self.a96, self.b96)

    def test_sqeuclidean_one_to_many_1000(self, benchmark):
        benchmark(dense.sqeuclidean_one_to_many, self.a96, self.X)

    def test_pairwise_block_100x1000(self, benchmark):
        A = self.X[:100]
        benchmark(dense.sqeuclidean_pairwise, A, self.X)

    def test_jaccard_scalar(self, benchmark):
        sa = sparse.as_sorted_set(rng.integers(0, 1000, 30))
        sb = sparse.as_sorted_set(rng.integers(0, 1000, 30))
        benchmark(sparse.jaccard, sa, sb)


class TestHeap:
    def test_checked_push_stream(self, benchmark):
        ids = rng.integers(0, 200, 1000)
        dists = rng.random(1000)

        def run():
            heap = NeighborHeap(20)
            for vid, d in zip(ids, dists):
                heap.checked_push(int(vid), float(d))
            return heap

        benchmark(run)

    def test_sorted_arrays(self, benchmark):
        heap = NeighborHeap(30)
        for vid, d in zip(rng.integers(0, 500, 300), rng.random(300)):
            heap.checked_push(int(vid), float(d))
        benchmark(heap.sorted_arrays)


class TestYGM:
    def test_async_roundtrip_1000(self, benchmark):
        def run():
            cluster = SimCluster(ClusterConfig(nodes=2, procs_per_node=2))
            world = YGMWorld(cluster, flush_threshold=256)
            world.register_handler("noop", lambda ctx, x: None)
            for i in range(1000):
                world.async_call(i % 4, (i * 3) % 4, "noop", i, nbytes=8)
            world.barrier()
            return world.handler_invocations

        assert benchmark(run) == 1000


class TestPartition:
    def test_owner_array_100k(self, benchmark):
        part = HashPartitioner(100_000, 64)
        ids = np.arange(100_000)
        benchmark(part.owner_array, ids)


class TestSearch:
    data = rng.random((500, 16)).astype(np.float32)

    @pytest.fixture(scope="class")
    def searcher(self):
        adj = optimize_graph(brute_force_knn_graph(self.data, k=10), 1.5)
        return KNNGraphSearcher(adj, self.data, seed=0)

    def test_single_query(self, benchmark, searcher):
        benchmark(searcher.query, self.data[0], 10, 0.1)


class TestTaxonomyBaselines:
    data = rng.random((500, 16)).astype(np.float32)

    def test_kdtree_query(self, benchmark):
        from repro.baselines.kdtree import KDTree
        tree = KDTree(self.data, leaf_size=16)
        benchmark(tree.query, self.data[0], 10)

    def test_lsh_query(self, benchmark):
        from repro.baselines.lsh import LSHIndex
        index = LSHIndex(self.data, metric="sqeuclidean", n_tables=8,
                         n_bits=4, seed=0)
        benchmark(index.query, self.data[0], 10)

    def test_pq_query(self, benchmark):
        from repro.baselines.pq import PQIndex
        index = PQIndex(self.data, m=4, n_centroids=32, seed=0)
        benchmark(index.query, self.data[0], 10, 50)
