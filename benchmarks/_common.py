"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at
laptop scale.  ``REPRO_BENCH_SCALE`` (float, default 1.0) multiplies the
dataset sizes: ``REPRO_BENCH_SCALE=4 pytest benchmarks/bench_fig4_...``
runs a 4x larger instance.

Conventions:

- each bench prints the same rows/series the paper reports, via
  :mod:`repro.eval.tables`,
- each bench also exercises the ``benchmark`` fixture (pytest-benchmark)
  on a representative unit so ``--benchmark-only`` produces timing
  tables; full experiments run once via ``benchmark.pedantic``.
"""

from __future__ import annotations

import os
from typing import Dict

from repro import (
    DNND,
    ClusterConfig,
    CommOptConfig,
    DNNDConfig,
    NNDescentConfig,
)
from repro.runtime.netmodel import NetworkModel


def bench_scale() -> float:
    """User scale knob (REPRO_BENCH_SCALE)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(n: int, minimum: int = 200) -> int:
    return max(int(n * bench_scale()), minimum)


def run_dnnd(data, k: int, nodes: int = 4, procs_per_node: int = 2,
             metric: str = "sqeuclidean", seed: int = 0,
             comm_opts: CommOptConfig | None = None,
             batch_size: int = 1 << 13,
             pruning_factor: float = 1.5,
             net: NetworkModel | None = None,
             optimize: bool = True):
    """Build (and optionally optimize) a DNND graph; returns
    ``(result, dnnd)``."""
    cfg = DNNDConfig(
        nnd=NNDescentConfig(k=k, metric=metric, seed=seed),
        comm_opts=comm_opts or CommOptConfig.optimized(),
        batch_size=batch_size,
        pruning_factor=pruning_factor,
    )
    dnnd = DNND(data, cfg,
                cluster=ClusterConfig(nodes=nodes, procs_per_node=procs_per_node),
                net=net)
    result = dnnd.build()
    if optimize:
        dnnd.optimize()
    return result, dnnd


def check_message_types(stats) -> Dict[str, tuple]:
    """Neighbor-check message types only (the Figure 4 scope)."""
    return {
        t: (stats.get(t).count, stats.get(t).bytes)
        for t in ("type1", "type2", "type2+", "type3")
        if stats.get(t).count
    }


def print_header(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def report(name: str, text: str) -> None:
    """Print a bench report and persist it under benchmarks/results/.

    pytest captures stdout by default (run with ``-s`` to stream), so
    the persisted copy is the canonical record EXPERIMENTS.md cites.
    """
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")
