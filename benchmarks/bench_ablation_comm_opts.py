"""Ablation A — each Section 4.3 technique in isolation.

The paper presents the three communication-saving techniques (4.3.1
one-sided, 4.3.2 redundancy check, 4.3.3 distance pruning) as a
package; this ablation quantifies each one's marginal contribution to
the Figure 4 totals, holding everything else fixed.
"""


from _common import report, run_dnnd, scaled
from repro import CommOptConfig
from repro.baselines.bruteforce import brute_force_knn_graph
from repro.datasets.ann_benchmarks import load_dataset
from repro.eval.recall import graph_recall
from repro.eval.tables import ascii_table

CHECK_TYPES = ("type1", "type2", "type2+", "type3")

VARIANTS = [
    ("unoptimized", CommOptConfig.unoptimized()),
    ("+ one-sided (4.3.1)", CommOptConfig(
        one_sided=True, redundancy_check=False, distance_pruning=False)),
    ("+ redundancy check (4.3.2)", CommOptConfig(
        one_sided=True, redundancy_check=True, distance_pruning=False)),
    ("+ distance pruning (4.3.3)", CommOptConfig.optimized()),
]

_cache = {}


def run_all():
    if _cache:
        return _cache
    n = scaled(700)
    data, spec = load_dataset("deep1b", n=n, seed=9)
    truth = brute_force_knn_graph(data, k=10, metric=spec.metric)
    rows = []
    for label, opts in VARIANTS:
        res, _ = run_dnnd(data, k=10, nodes=8, procs_per_node=2,
                          metric=spec.metric, seed=9, comm_opts=opts,
                          optimize=False)
        stats = res.phase_stats["neighbor_check"]
        rows.append({
            "label": label,
            "messages": stats.total_count(CHECK_TYPES),
            "bytes": stats.total_bytes(CHECK_TYPES),
            "distance_evals": res.distance_evals,
            "recall": graph_recall(res.graph, truth),
            "sim_seconds": res.sim_seconds,
        })
    _cache["rows"] = rows
    return _cache


def test_each_step_reduces_traffic(benchmark):
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = out["rows"]
    msgs = [r["messages"] for r in rows]
    byts = [r["bytes"] for r in rows]
    # One-sided must cut messages and bytes sharply.
    assert msgs[1] < msgs[0] * 0.8
    assert byts[1] < byts[0] * 0.8
    # Redundancy check reduces bytes further (fewer feature shipments).
    assert byts[2] < byts[1]
    # Distance pruning reduces messages further (fewer Type 3 replies).
    assert msgs[3] < msgs[2]


def test_quality_never_sacrificed(benchmark):
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    recalls = [r["recall"] for r in out["rows"]]
    assert min(recalls) > 0.85
    assert max(recalls) - min(recalls) < 0.08


def test_print_ablation(benchmark):
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    base = out["rows"][0]
    table_rows = []
    for r in out["rows"]:
        table_rows.append([
            r["label"], r["messages"], r["bytes"],
            f"{r['messages'] / base['messages']:.2f}",
            f"{r['bytes'] / base['bytes']:.2f}",
            r["distance_evals"], round(r["recall"], 4),
        ])
    report("ablation_comm_opts", ascii_table(
        ["variant", "check msgs", "check bytes", "msg ratio",
         "bytes ratio", "dist evals", "recall"],
        table_rows,
        title="Ablation: Section 4.3 techniques applied cumulatively",
    ))
