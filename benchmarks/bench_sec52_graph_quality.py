"""Section 5.2 — preliminary NN-graph quality evaluation.

Paper: DNND on the six small Table 1 datasets, k = 100, recall against
brute-force ground truth; scores 0.93 (NYTimes), 0.98 (Last.fm), and
>= 0.99 for the rest.

Here: the same experiment on the stand-ins with k scaled to the
dataset sizes (k=15 at the default ~600-1200 points; raise
REPRO_BENCH_SCALE to grow both).  The claims to check are (a) all
recalls are high and (b) the difficulty ordering is preserved —
NYTimes-like lowest, Last.fm-like next, the rest at the top.
"""

import pytest

from _common import report, run_dnnd, scaled
from repro.baselines.bruteforce import brute_force_knn_graph
from repro.datasets.ann_benchmarks import SMALL_DATASETS, load_dataset
from repro.eval.recall import graph_recall
from repro.eval.tables import ascii_table

PAPER_RECALL = {
    "fashion-mnist": 0.99, "glove-25": 0.99, "kosarak": 0.99,
    "mnist": 0.99, "nytimes": 0.93, "lastfm": 0.98,
}

K = 15
SIZES = {
    "fashion-mnist": 600, "glove-25": 900, "kosarak": 400,
    "mnist": 600, "nytimes": 700, "lastfm": 700,
}

_results = {}


def run_one(name: str):
    if name in _results:
        return _results[name]
    n = scaled(SIZES[name])
    data, spec = load_dataset(name, n=n, seed=1)
    res, _ = run_dnnd(data, k=K, nodes=2, procs_per_node=2,
                      metric=spec.metric, seed=1, optimize=False)
    truth = brute_force_knn_graph(data, k=K, metric=spec.metric)
    recall = graph_recall(res.graph, truth)
    _results[name] = (recall, res.iterations, len(data))
    return _results[name]


@pytest.mark.parametrize("name", SMALL_DATASETS)
def test_dataset_quality(benchmark, name):
    recall, iters, n = benchmark.pedantic(
        lambda: run_one(name), rounds=1, iterations=1)
    # Every dataset must reach a high recall (paper floor is 0.93).
    assert recall > 0.80, (name, recall)


def test_print_sec52_table(benchmark):
    def run():
        rows = []
        for name in SMALL_DATASETS:
            recall, iters, n = run_one(name)
            rows.append([name, n, K, round(recall, 4),
                         PAPER_RECALL[name], iters])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("sec52_graph_quality", ascii_table(
        ["dataset", "n", "k", "recall (measured)", "recall (paper, k=100)",
         "iterations"],
        rows,
        title="Section 5.2: DNND graph recall vs brute force",
    ))
    # Shape check: among the dense datasets, the paper's hardest
    # (NYTimes, 0.93) stays hardest in the stand-ins too.  Kosarak is
    # excluded: at this scale sparse Jaccard is intrinsically the
    # hardest, while the paper's k=100 run had it >= 0.99.
    recalls = {name: run_one(name)[0] for name in SMALL_DATASETS}
    dense = {k: v for k, v in recalls.items() if k != "kosarak"}
    assert dense["nytimes"] == min(dense.values())
    assert min(recalls.values()) > 0.85
