"""Extension experiment — distributed query execution cost.

Not a paper figure: the paper gathers the graph and queries it in
shared memory (Section 5.3.1), leaving distributed *querying* as the
natural next step for a massive-scale framework (Section 1; Pyramid in
Section 6).  This bench measures the library's distributed searcher:
per-query message count/volume and recall as epsilon grows, and the
effect of cluster size on off-node traffic.
"""


from _common import report, scaled
from repro import ClusterConfig, brute_force_knn_graph
from repro.baselines.bruteforce import brute_force_neighbors
from repro.core.dist_search import DistributedKNNGraphSearcher
from repro.core.optimization import optimize_graph
from repro.datasets.ann_benchmarks import load_dataset
from repro.eval.recall import recall_at_k
from repro.eval.tables import ascii_table

_cache = {}


def run_all():
    if _cache:
        return _cache
    n = scaled(700)
    data, spec = load_dataset("deep1b", n=n, seed=14)
    adj = optimize_graph(brute_force_knn_graph(data, k=10, metric=spec.metric),
                         pruning_factor=1.5)
    queries = data[: max(30, n // 20)]
    gt_ids, _ = brute_force_neighbors(data, queries, k=10, metric=spec.metric)

    eps_rows = []
    for eps in (0.0, 0.2, 0.4):
        s = DistributedKNNGraphSearcher(
            adj, data, metric=spec.metric,
            cluster=ClusterConfig(nodes=4, procs_per_node=2), seed=14)
        ids, _, _ = s.query_batch(queries, l=10, epsilon=eps)
        stats = s.message_stats
        nq = len(queries)
        eps_rows.append({
            "epsilon": eps,
            "recall": recall_at_k(ids, gt_ids),
            "msgs_per_query": stats.total_count() / nq,
            "bytes_per_query": stats.total_bytes() / nq,
        })

    node_rows = []
    for nodes in (2, 4, 8):
        s = DistributedKNNGraphSearcher(
            adj, data, metric=spec.metric,
            cluster=ClusterConfig(nodes=nodes, procs_per_node=2), seed=14)
        s.query_batch(queries[:10], l=10, epsilon=0.2)
        stats = s.message_stats
        node_rows.append({
            "nodes": nodes,
            "offnode_frac": (stats.offnode_count()
                             / max(1, stats.total_count())),
        })
    _cache.update({"eps": eps_rows, "nodes": node_rows})
    return _cache


def test_epsilon_buys_recall_with_messages(benchmark):
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = out["eps"]
    assert rows[-1]["recall"] >= rows[0]["recall"]
    assert rows[-1]["msgs_per_query"] > rows[0]["msgs_per_query"]
    assert rows[-1]["recall"] > 0.9


def test_offnode_share_grows_with_nodes(benchmark):
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    fracs = [r["offnode_frac"] for r in out["nodes"]]
    assert fracs[-1] > fracs[0]


def test_print_dist_query(benchmark):
    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    text = [ascii_table(
        ["epsilon", "recall@10", "messages/query", "bytes/query"],
        [[r["epsilon"], round(r["recall"], 4),
          round(r["msgs_per_query"], 1), round(r["bytes_per_query"], 0)]
         for r in out["eps"]],
        title="Extension: distributed query cost vs epsilon (4 nodes)",
    )]
    text.append(ascii_table(
        ["nodes", "off-node msg share"],
        [[r["nodes"], f"{r['offnode_frac']:.0%}"] for r in out["nodes"]],
        title="Extension: off-node traffic share vs cluster size",
    ))
    report("ext_dist_query", "\n\n".join(text))
