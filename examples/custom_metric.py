#!/usr/bin/env python
"""Bring your own distance function.

NN-Descent's core selling point (Section 3.1): it "works on any data as
long as the distance metric can calculate the distance between any
vertex pair".  This example registers a *weighted* Euclidean metric
(feature importances, a common need in tabular similarity search) and
runs the entire pipeline — distributed construction, optimization,
search, recall — against it with zero algorithm changes.

Run:  python examples/custom_metric.py
"""

import numpy as np

from repro import (
    DNND,
    ClusterConfig,
    DNNDConfig,
    KNNGraphSearcher,
    NNDescentConfig,
    brute_force_knn_graph,
    graph_recall,
    register_metric,
)
from repro.distances.registry import Metric
from repro.datasets import gaussian_mixture

#: Feature importances: the first quarter of the features carries most
#: of the signal (say, curated attributes vs noisy tail features).
DIM = 24
WEIGHTS = np.concatenate([np.full(DIM // 4, 4.0), np.ones(DIM - DIM // 4)])


def weighted_sqeuclidean(a, b) -> float:
    d = np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64)
    return float((WEIGHTS * d * d).sum())


def weighted_sqeuclidean_batch(q, X) -> np.ndarray:
    d = X.astype(np.float64) - np.asarray(q, dtype=np.float64)
    return (d * d) @ WEIGHTS


def main() -> None:
    register_metric(Metric(
        "weighted_sqeuclidean",
        weighted_sqeuclidean,
        one_to_many=weighted_sqeuclidean_batch,
    ), overwrite=True)
    print("registered custom metric 'weighted_sqeuclidean' "
          f"(first {DIM // 4} features weighted 4x)")

    data = gaussian_mixture(1200, DIM, n_clusters=12, cluster_std=0.35,
                            seed=33, arrangement="chain")

    cfg = DNNDConfig(nnd=NNDescentConfig(
        k=10, metric="weighted_sqeuclidean", seed=33))
    dnnd = DNND(data, cfg, cluster=ClusterConfig(nodes=4, procs_per_node=2))
    result = dnnd.build()
    adjacency = dnnd.optimize()
    print(f"built in {result.iterations} iterations "
          f"({result.distance_evals:,} custom-metric evaluations)")

    truth = brute_force_knn_graph(data, k=10, metric="weighted_sqeuclidean")
    print(f"graph recall under the custom metric: "
          f"{graph_recall(result.graph, truth):.4f}")

    searcher = KNNGraphSearcher(adjacency, data,
                                metric="weighted_sqeuclidean", seed=0)
    res = searcher.query(data[10], l=5, epsilon=0.2)
    print(f"5-NN of point 10 (weighted space): {res.ids.tolist()}")

    # The weighting matters: compare against plain L2 neighbors.
    plain = brute_force_knn_graph(data, k=10, metric="sqeuclidean")
    overlap = graph_recall(truth, plain)
    print(f"overlap between weighted and plain L2 neighborhoods: "
          f"{overlap:.3f} (the metric changes the answer)")


if __name__ == "__main__":
    main()
