#!/usr/bin/env python
"""Quickstart: build a k-NN graph, optimize it, and run ANN queries.

This is the smallest useful tour of the public API:

1. generate a clustered dataset,
2. build an approximate k-NN graph with shared-memory NN-Descent
   (Algorithm 1 of the paper),
3. apply the Section 4.5 graph optimizations,
4. answer nearest-neighbor queries with the Section 3.3 epsilon search,
5. check recall against exact brute force.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    KNNGraphSearcher,
    brute_force_knn_graph,
    brute_force_neighbors,
    build_knn_graph,
    graph_recall,
    optimize_graph,
    recall_at_k,
)
from repro.datasets import gaussian_mixture


def main() -> None:
    # 1. A clustered dataset: 2,000 points in 32 dimensions.
    data = gaussian_mixture(2000, 32, n_clusters=20, cluster_std=0.35, seed=0)
    print(f"dataset: {data.shape[0]} points, {data.shape[1]} dims")

    # 2. NN-Descent build (k=10). delta/rho defaults follow the paper.
    result = build_knn_graph(data, k=10, metric="sqeuclidean", seed=0)
    print(f"NN-Descent: {result.iterations} iterations, "
          f"{result.distance_evals:,} distance evaluations, "
          f"converged={result.converged}")

    # How good is the graph? Compare against exact brute force.
    truth = brute_force_knn_graph(data, k=10)
    print(f"graph recall vs brute force: {graph_recall(result.graph, truth):.4f}")

    # 3. Section 4.5 optimizations: reverse-edge merge + degree pruning.
    adjacency = optimize_graph(result.graph, pruning_factor=1.5)
    print(f"optimized graph: {adjacency.n_edges:,} edges, "
          f"max degree {int(adjacency.degrees().max())}")

    # 4. ANN queries with the epsilon-relaxed greedy search.
    searcher = KNNGraphSearcher(adjacency, data, metric="sqeuclidean", seed=0)
    rng = np.random.default_rng(1)
    queries = data[rng.choice(len(data), 100, replace=False)] + rng.normal(
        0, 0.01, (100, data.shape[1])).astype(np.float32)

    ids, dists, stats = searcher.query_batch(queries, l=10, epsilon=0.2)
    print(f"queries: {stats['n_queries']} run, "
          f"{stats['mean_distance_evals']:.0f} distance evals/query "
          f"(vs {len(data)} for brute force)")

    # 5. Recall@10 against exact answers.
    gt_ids, _ = brute_force_neighbors(data, queries, k=10)
    print(f"recall@10: {recall_at_k(ids, gt_ids):.4f}")


if __name__ == "__main__":
    main()
