#!/usr/bin/env python
"""Recommendation-style ANN: cosine embeddings, GloVe/Last.fm-like.

The paper's intro motivates k-NN search with recommendation systems:
items live in an embedding space, and "users who liked X" maps to
"find X's nearest neighbors under cosine distance".  This example:

1. generates a Last.fm-like synthetic embedding table (65-dim, cosine),
2. builds the k-NN graph with NN-Descent and optimizes it,
3. serves two workloads:
   - item-to-item recommendations ("more like this") for catalog items,
   - cold-start user vectors (averages of a few liked items) as
     out-of-dataset queries — the Section 3.3 search supports both,
4. sweeps epsilon to show the recall/latency dial an application gets.

Run:  python examples/recommender_search.py
"""

import numpy as np

from repro import (
    KNNGraphSearcher,
    brute_force_neighbors,
    build_knn_graph,
    optimize_graph,
    recall_at_k,
)
from repro.datasets.ann_benchmarks import load_dataset


def main() -> None:
    # Last.fm stand-in: 65-dim cosine embeddings (Table 1 row 6).
    items, spec = load_dataset("lastfm", n=3000, seed=42)
    print(f"catalog: {items.shape[0]} items, {items.shape[1]}-dim "
          f"embeddings, metric={spec.metric}")

    result = build_knn_graph(items, k=15, metric=spec.metric, seed=42)
    adjacency = optimize_graph(result.graph, pruning_factor=1.5)
    searcher = KNNGraphSearcher(adjacency, items, metric=spec.metric, seed=0)
    print(f"index built in {result.iterations} NN-Descent iterations "
          f"({result.distance_evals:,} distance evals)")

    # --- Workload 1: item-to-item ("more like this") -----------------------
    item = 123
    rec = searcher.query(items[item], l=6, epsilon=0.1)
    neighbors = [int(v) for v in rec.ids if int(v) != item][:5]
    print(f"\nitems similar to #{item}: {neighbors}")
    print(f"  (visited {rec.n_visited} of {len(items)} items)")

    # --- Workload 2: cold-start user vectors ------------------------------
    rng = np.random.default_rng(7)
    n_users = 200
    liked = rng.integers(0, len(items), size=(n_users, 3))
    user_vectors = items[liked].mean(axis=1)

    ids, _, stats = searcher.query_batch(user_vectors, l=10, epsilon=0.2)
    gt_ids, _ = brute_force_neighbors(items, user_vectors, k=10,
                                      metric=spec.metric)
    print(f"\ncold-start users: {n_users} queries, "
          f"{stats['mean_distance_evals']:.0f} distance evals/query, "
          f"recall@10 = {recall_at_k(ids, gt_ids):.4f}")

    # --- The epsilon dial (Figure 2's x-axis walk) -------------------------
    print("\nepsilon sweep (quality vs work, paper Section 3.3):")
    for eps in (0.0, 0.1, 0.2, 0.3, 0.4):
        ids, _, stats = searcher.query_batch(user_vectors[:50], l=10,
                                             epsilon=eps)
        r = recall_at_k(ids, gt_ids[:50])
        print(f"  epsilon={eps:.2f}: recall@10={r:.4f}  "
              f"evals/query={stats['mean_distance_evals']:.0f}")


if __name__ == "__main__":
    main()
