#!/usr/bin/env python
"""Distributed query execution: searching without gathering the graph.

The paper gathers the constructed k-NNG to one node and queries it with
a shared-memory program (Section 5.3.1).  At true massive scale the
graph never fits one node, so this example shows the library's
distributed searcher: the graph and dataset stay sharded exactly as
DNND built them, and each query routes vertex expansions to the owning
ranks — only ids and distances travel, never feature vectors.

Run:  python examples/distributed_query.py
"""


from repro import ClusterConfig, brute_force_neighbors, recall_at_k
from repro.baselines.bruteforce import brute_force_knn_graph
from repro.core.dist_search import DistributedKNNGraphSearcher
from repro.core.optimization import optimize_graph
from repro.core.search import KNNGraphSearcher
from repro.datasets.ann_benchmarks import load_dataset


def main() -> None:
    data, spec = load_dataset("deep1b", n=1200, seed=9)
    print(f"dataset: DEEP-1B stand-in, {data.shape[0]} x {data.shape[1]}")

    graph = brute_force_knn_graph(data, k=10, metric=spec.metric)
    adjacency = optimize_graph(graph, pruning_factor=1.5)

    # Shared-memory reference (the paper's query program).
    shared = KNNGraphSearcher(adjacency, data, metric=spec.metric, seed=0)
    # Distributed searcher on a simulated 4-node cluster.
    distributed = DistributedKNNGraphSearcher(
        adjacency, data, metric=spec.metric,
        cluster=ClusterConfig(nodes=4, procs_per_node=2), seed=0)

    queries = data[:60]
    gt_ids, _ = brute_force_neighbors(data, queries, k=10, metric=spec.metric)

    s_ids, _, s_stats = shared.query_batch(queries, l=10, epsilon=0.3)
    d_ids, _, d_stats = distributed.query_batch(queries, l=10, epsilon=0.3)

    print("\n--- recall@10 (same graph, two execution models) ---")
    print(f"shared-memory searcher: {recall_at_k(s_ids, gt_ids):.4f} "
          f"({s_stats['mean_distance_evals']:.0f} distance evals/query)")
    print(f"distributed searcher:   {recall_at_k(d_ids, gt_ids):.4f} "
          f"({d_stats['mean_distance_evals']:.0f} distance evals/query)")

    print("\n--- network cost of distributed queries ---")
    stats = distributed.message_stats
    for t in ("expand", "expand_reply"):
        s = stats.get(t)
        print(f"{t:<13s}: {s.count:,} messages, {s.bytes:,} bytes "
              f"({s.bytes / max(1, s.count):.0f} B/msg)")
    n_q = len(queries)
    print(f"per query: {stats.total_count() / n_q:.0f} messages, "
          f"{stats.total_bytes() / n_q:.0f} bytes "
          f"(feature vectors never travel: "
          f"{data.shape[1] * data.dtype.itemsize} B each stay put)")


if __name__ == "__main__":
    main()
