#!/usr/bin/env python
"""The Metall persistence workflow: build once, reopen many times.

Section 4.6 of the paper: constructing a high-quality k-NNG costs far
more than querying it, so DNND persists the graph + dataset through
Metall and ships *two executables* — one that constructs, one that
reopens and optimizes.  This example reproduces that lifecycle and the
paper's future-work scenario (Section 7): appending new points followed
by a short NN-Descent refinement instead of a full rebuild.

Run:  python examples/persistent_index.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    DNND,
    ClusterConfig,
    DNNDConfig,
    KNNGraphSearcher,
    MetallStore,
    NNDescentConfig,
    build_knn_graph,
    optimize_from_store,
)
from repro.core.graph import AdjacencyGraph
from repro.datasets import gaussian_mixture


def executable_one_construct(data, store_path) -> None:
    """The paper's first executable: build and persist."""
    cfg = DNNDConfig(nnd=NNDescentConfig(k=10, seed=3))
    dnnd = DNND(data, cfg, cluster=ClusterConfig(nodes=4, procs_per_node=2))
    result = dnnd.build(store_path=store_path)
    print(f"[construct] {result.iterations} iterations, "
          f"graph persisted to {store_path}")


def executable_two_optimize(store_path) -> None:
    """The paper's second executable: reopen and optimize."""
    adjacency = optimize_from_store(store_path, pruning_factor=1.5)
    print(f"[optimize]  reopened store, optimized graph has "
          f"{adjacency.n_edges:,} edges "
          f"(max degree {int(adjacency.degrees().max())})")


def query_program(store_path) -> None:
    """A separate query process attaches read-only."""
    with MetallStore.open_read_only(store_path) as store:
        adjacency = AdjacencyGraph.from_arrays(store["optimized_graph"])
        dataset = np.asarray(store["dataset"])
        metric = store["meta"]["metric"]
    searcher = KNNGraphSearcher(adjacency, dataset, metric=metric, seed=0)
    res = searcher.query(dataset[0], l=5, epsilon=0.2)
    print(f"[query]     5-NN of point 0: {res.ids.tolist()} "
          f"({res.n_distance_evals} distance evals)")


def incremental_update(store_path, new_points) -> None:
    """Section 7's future-work scenario: add points, short refinement.

    We append the new rows, then run a short NN-Descent refinement over
    the merged dataset — far cheaper than building from scratch because
    delta-termination fires quickly when most of the graph is settled.
    """
    with MetallStore.open(store_path) as store:
        dataset = np.asarray(store["dataset"])
        merged = np.vstack([dataset, new_points.astype(dataset.dtype)])
        refreshed = build_knn_graph(merged, k=10, seed=4, max_iters=8)
        store["dataset"] = merged
        store["graph"] = refreshed.graph.to_arrays()
        meta = dict(store["meta"])
        meta["n"] = len(merged)
        store["meta"] = meta
    print(f"[update]    appended {len(new_points)} points "
          f"({refreshed.iterations} refinement iterations), store now "
          f"holds {len(merged)} points")


def main() -> None:
    data = gaussian_mixture(1000, 24, n_clusters=12, cluster_std=0.2, seed=3)
    with tempfile.TemporaryDirectory() as tmp:
        store_path = Path(tmp) / "dnnd_store"

        executable_one_construct(data, store_path)
        executable_two_optimize(store_path)
        query_program(store_path)

        new_points = gaussian_mixture(100, 24, n_clusters=12,
                                      cluster_std=0.2, seed=99)
        incremental_update(store_path, new_points)
        executable_two_optimize(store_path)
        query_program(store_path)


if __name__ == "__main__":
    main()
