#!/usr/bin/env python
"""A miniature Figure 3: strong scaling with the cost model + tracer.

Builds the same DEEP-like k-NNG on simulated clusters of 2, 4, 8, and
16 nodes, reporting:

- modeled construction time per node count (the Figure 3 y-axis),
- parallel efficiency and where it rolls off,
- a per-phase bottleneck breakdown from the runtime tracer
  (the Section 7 "computation vs communication" question).

Run:  python examples/scaling_study.py
"""

from repro import (
    DNND,
    ClusterConfig,
    DNNDConfig,
    NNDescentConfig,
)
from repro.datasets.ann_benchmarks import load_dataset
from repro.eval.tables import ascii_table
from repro.runtime.tracing import attach_tracer
from repro.utils.timing import format_duration


def main() -> None:
    data, spec = load_dataset("deep1b", n=1200, seed=5)
    print(f"dataset: DEEP-1B stand-in, {data.shape[0]} x {data.shape[1]} "
          f"({spec.metric})")

    results = {}
    tracers = {}
    for nodes in (2, 4, 8, 16):
        cfg = DNNDConfig(nnd=NNDescentConfig(k=10, seed=5),
                         batch_size=1 << 13)
        dnnd = DNND(data, cfg,
                    cluster=ClusterConfig(nodes=nodes, procs_per_node=2))
        tracers[nodes] = attach_tracer(dnnd.world)
        results[nodes] = dnnd.build()

    base = results[2].sim_seconds
    rows = []
    for nodes, res in results.items():
        speedup = base / res.sim_seconds
        efficiency = speedup / (nodes / 2)
        rows.append([
            nodes, nodes * 2, format_duration(res.sim_seconds),
            f"{speedup:.2f}x", f"{efficiency:.0%}",
            f"{res.message_stats.offnode_count() / max(1, res.message_stats.total_count()):.0%}",
        ])
    print()
    print(ascii_table(
        ["nodes", "ranks", "sim time", "speedup", "efficiency",
         "off-node msgs"],
        rows,
        title="strong scaling (paper Figure 3: speedup with flattening)",
    ))

    print("\nbottleneck breakdown at 16 nodes (Section 7 profiling):")
    print(tracers[16].report())


if __name__ == "__main__":
    main()
