#!/usr/bin/env python
"""DNND on a simulated cluster: the paper's headline workflow.

Builds the same k-NN graph with the *unoptimized* and the *optimized*
neighbor-check communication patterns (Section 4.3 / Figure 1) on a
simulated 8-node cluster, and prints:

- per-message-type traffic statistics (the Figure 4 measurement),
- the modeled construction time and its per-phase breakdown,
- graph quality vs brute force,
- host wall-clock of the sim vs the shared-memory parallel execution
  backend for the same seed.

Run:  python examples/distributed_build.py
      python examples/distributed_build.py --backend parallel --workers 4
"""

import argparse
import time

from repro import (
    DNND,
    ClusterConfig,
    CommOptConfig,
    DNNDConfig,
    NNDescentConfig,
    brute_force_knn_graph,
    graph_recall,
)
from repro.datasets import gaussian_mixture
from repro.utils.timing import format_duration

CHECK_TYPES = ("type1", "type2", "type2+", "type3")


def build(data, comm_opts, label):
    cfg = DNNDConfig(
        nnd=NNDescentConfig(k=10, metric="sqeuclidean", seed=7),
        comm_opts=comm_opts,
        batch_size=1 << 13,           # Section 4.4 batched communication
    )
    cluster = ClusterConfig(nodes=8, procs_per_node=2)
    dnnd = DNND(data, cfg, cluster=cluster)
    result = dnnd.build()
    dnnd.optimize()

    print(f"\n--- {label} ---")
    print(f"iterations: {result.iterations}  converged: {result.converged}")
    print(f"simulated construction time: "
          f"{format_duration(result.sim_seconds)} "
          f"({result.world_size} ranks)")
    for phase, secs in sorted(result.phase_seconds.items(),
                              key=lambda t: -t[1]):
        print(f"  {phase:<16s} {format_duration(secs)}")
    print(result.phase_stats["neighbor_check"].format_table(
        "neighbor-check messages"))
    return result


def timed_build(data, backend, workers, truth):
    """Host wall-clock of one batched build under an execution backend."""
    cfg = DNNDConfig(
        nnd=NNDescentConfig(k=10, metric="sqeuclidean", seed=7),
        comm_opts=CommOptConfig.optimized(),
        batch_size=1 << 13,
        backend=backend,
        workers=workers,
    )
    dnnd = DNND(data, cfg, cluster=ClusterConfig(nodes=8, procs_per_node=2))
    t0 = time.perf_counter()
    try:
        result = dnnd.build()
    finally:
        dnnd.close()
    wall = time.perf_counter() - t0
    w = f" workers={workers}" if backend == "parallel" else ""
    print(f"  {backend:<8s}{w:<11s} {wall:6.2f}s wall   "
          f"recall {graph_recall(result.graph, truth):.4f}")
    return wall


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--backend", choices=["sim", "parallel", "both"],
                    default="both",
                    help="execution backend(s) for the wall-clock section")
    ap.add_argument("--workers", type=int, default=4,
                    help="worker count for the parallel backend")
    args = ap.parse_args()

    data = gaussian_mixture(1200, 32, n_clusters=16, cluster_std=0.2, seed=7)
    print(f"dataset: {data.shape[0]} points x {data.shape[1]} dims, "
          f"simulated cluster: 8 nodes x 2 ranks")

    unopt = build(data, CommOptConfig.unoptimized(), "unoptimized (Figure 1a)")
    opt = build(data, CommOptConfig.optimized(), "optimized (Figure 1b)")

    u_cnt = unopt.phase_stats["neighbor_check"].total_count(CHECK_TYPES)
    o_cnt = opt.phase_stats["neighbor_check"].total_count(CHECK_TYPES)
    u_b = unopt.phase_stats["neighbor_check"].total_bytes(CHECK_TYPES)
    o_b = opt.phase_stats["neighbor_check"].total_bytes(CHECK_TYPES)
    print("\n--- communication savings (paper Figure 4: ~50%) ---")
    print(f"messages: {1 - o_cnt / u_cnt:.1%} fewer")
    print(f"bytes:    {1 - o_b / u_b:.1%} fewer")

    truth = brute_force_knn_graph(data, k=10)
    print("\n--- quality (identical algorithm, different wire protocol) ---")
    print(f"unoptimized recall: {graph_recall(unopt.graph, truth):.4f}")
    print(f"optimized recall:   {graph_recall(opt.graph, truth):.4f}")

    print("\n--- execution backends (same seed, host wall-clock) ---")
    walls = {}
    if args.backend in ("sim", "both"):
        walls["sim"] = timed_build(data, "sim", 0, truth)
    if args.backend in ("parallel", "both"):
        walls["parallel"] = timed_build(data, "parallel", args.workers, truth)
    if len(walls) == 2:
        print(f"  parallel speedup over sim: "
              f"{walls['sim'] / walls['parallel']:.2f}x")


if __name__ == "__main__":
    main()
