#!/usr/bin/env python
"""DNND on a simulated cluster: the paper's headline workflow.

Builds the same k-NN graph with the *unoptimized* and the *optimized*
neighbor-check communication patterns (Section 4.3 / Figure 1) on a
simulated 8-node cluster, and prints:

- per-message-type traffic statistics (the Figure 4 measurement),
- the modeled construction time and its per-phase breakdown,
- graph quality vs brute force.

Run:  python examples/distributed_build.py
"""

from repro import (
    DNND,
    ClusterConfig,
    CommOptConfig,
    DNNDConfig,
    NNDescentConfig,
    brute_force_knn_graph,
    graph_recall,
)
from repro.datasets import gaussian_mixture
from repro.utils.timing import format_duration

CHECK_TYPES = ("type1", "type2", "type2+", "type3")


def build(data, comm_opts, label):
    cfg = DNNDConfig(
        nnd=NNDescentConfig(k=10, metric="sqeuclidean", seed=7),
        comm_opts=comm_opts,
        batch_size=1 << 13,           # Section 4.4 batched communication
    )
    cluster = ClusterConfig(nodes=8, procs_per_node=2)
    dnnd = DNND(data, cfg, cluster=cluster)
    result = dnnd.build()
    dnnd.optimize()

    print(f"\n--- {label} ---")
    print(f"iterations: {result.iterations}  converged: {result.converged}")
    print(f"simulated construction time: "
          f"{format_duration(result.sim_seconds)} "
          f"({result.world_size} ranks)")
    for phase, secs in sorted(result.phase_seconds.items(),
                              key=lambda t: -t[1]):
        print(f"  {phase:<16s} {format_duration(secs)}")
    print(result.phase_stats["neighbor_check"].format_table(
        "neighbor-check messages"))
    return result


def main() -> None:
    data = gaussian_mixture(1200, 32, n_clusters=16, cluster_std=0.2, seed=7)
    print(f"dataset: {data.shape[0]} points x {data.shape[1]} dims, "
          f"simulated cluster: 8 nodes x 2 ranks")

    unopt = build(data, CommOptConfig.unoptimized(), "unoptimized (Figure 1a)")
    opt = build(data, CommOptConfig.optimized(), "optimized (Figure 1b)")

    u_cnt = unopt.phase_stats["neighbor_check"].total_count(CHECK_TYPES)
    o_cnt = opt.phase_stats["neighbor_check"].total_count(CHECK_TYPES)
    u_b = unopt.phase_stats["neighbor_check"].total_bytes(CHECK_TYPES)
    o_b = opt.phase_stats["neighbor_check"].total_bytes(CHECK_TYPES)
    print("\n--- communication savings (paper Figure 4: ~50%) ---")
    print(f"messages: {1 - o_cnt / u_cnt:.1%} fewer")
    print(f"bytes:    {1 - o_b / u_b:.1%} fewer")

    truth = brute_force_knn_graph(data, k=10)
    print("\n--- quality (identical algorithm, different wire protocol) ---")
    print(f"unoptimized recall: {graph_recall(unopt.graph, truth):.4f}")
    print(f"optimized recall:   {graph_recall(opt.graph, truth):.4f}")


if __name__ == "__main__":
    main()
