#!/usr/bin/env python
"""ANN-Benchmarks-style comparison: all algorithms on one dataset.

Reproduces the paper's evaluation methodology end-to-end at laptop
scale: split a dataset into train/queries, build an index with every
algorithm in this library (DNND, shared-memory NN-Descent, HNSW, brute
force), sweep each algorithm's query knob, and print the build-cost and
recall-vs-work comparison — the raw material of the paper's Figure 2.

Run:  python examples/ann_benchmark_runner.py
"""

from repro.datasets.ann_benchmarks import load_dataset
from repro.datasets.synthetic import train_query_split
from repro.eval.ann_benchmark import AnnBenchmarkRunner


def main() -> None:
    data, spec = load_dataset("glove-25", n=1600, seed=17)
    train, queries = train_query_split(data, n_queries=120, seed=17)
    print(f"dataset: GloVe-25 stand-in — {len(train)} train rows, "
          f"{len(queries)} queries, metric={spec.metric}")

    runner = AnnBenchmarkRunner(train, queries, k=10, metric=spec.metric,
                                dataset_name="glove-25", seed=17)
    report = runner.run_all(graph_k=15)
    # GloVe is cosine, so LSH (SimHash) applies; the k-d tree needs L2
    # and sits this one out — exactly the flexibility gap Section 1
    # credits graph methods with.
    runner.run_lsh(n_tables=12, n_bits=10)

    print()
    print(report.format())
    for floor in (0.90, 0.99):
        winner = report.winner_at_recall(floor)
        print(f"\ncheapest algorithm at recall >= {floor:.0%}: {winner}")


if __name__ == "__main__":
    main()
